// Bottleneck provenance over a general TREE query (§7).
//
// A data-pipeline lineage: source datasets feed staging tables, which feed
// two reporting marts. Every edge carries a quality score in [0, 100];
// the max-min semiring computes, per reported combination, the best
// achievable worst-link quality — "how trustworthy is this output, taking
// the strongest derivation path?". The query is the paper's Figure-3-style
// general twig: two high-degree non-output attributes.

#include <algorithm>
#include <set>
#include <iostream>

#include "parjoin/algorithms/tree_query.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

namespace {

using S = parjoin::MaxMinSemiring;

parjoin::Relation<S> LineageEdges(parjoin::Schema schema, int from, int to,
                                  int rows, std::uint64_t seed) {
  parjoin::Rng rng(seed);
  parjoin::Relation<S> rel(schema);
  std::set<std::pair<parjoin::Value, parjoin::Value>> seen;
  while (static_cast<int>(seen.size()) < rows) {
    parjoin::Value u = rng.Uniform(0, from - 1);
    parjoin::Value v = rng.Uniform(0, to - 1);
    if (!seen.insert({u, v}).second) continue;
    rel.Add(parjoin::Row{u, v}, rng.Uniform(50, 100));  // quality score
  }
  return rel;
}

}  // namespace

int main() {
  // Attributes: report1 = 1, report2 = 2, report3 = 3, source = 4 (all
  // outputs); staging hubs b1 = 10, b2 = 11 (non-output, high degree);
  // intermediate c = 12.
  // Query tree: 1 - 10 - 2, 10 - 11, 11 - 3, 11 - 12 - 4.
  parjoin::JoinTree lineage(
      {{1, 10}, {10, 2}, {10, 11}, {11, 3}, {11, 12}, {12, 4}},
      {1, 2, 3, 4});
  std::cout << "Lineage query: " << lineage.DebugString() << "\n";

  parjoin::mpc::Cluster cluster(16);
  parjoin::TreeInstance<S> instance{lineage, {}};
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{1, 10}, 60, 30, 500, 1)));
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{10, 2}, 30, 60, 500, 2)));
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{10, 11}, 30, 30, 300, 3)));
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{11, 3}, 30, 60, 500, 4)));
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{11, 12}, 30, 25, 300, 5)));
  instance.relations.push_back(parjoin::Distribute(
      cluster, LineageEdges(parjoin::Schema{12, 4}, 25, 60, 500, 6)));

  auto result = parjoin::TreeQueryAggregate(cluster, instance);

  parjoin::Relation<S> local = result.ToLocal();
  local.Normalize();
  std::int64_t strong = 0;
  S::ValueType best = S::Zero();
  for (const auto& t : local.tuples()) {
    if (t.w >= 90) ++strong;
    best = S::Plus(best, t.w);
  }
  std::cout << local.size()
            << " derivable (report1, report2, report3, source) combinations;"
            << "\n  " << strong
            << " with bottleneck quality >= 90 (best overall: " << best
            << ").\n";
  std::cout << "Tree-query load: " << cluster.stats().max_load << " in "
            << cluster.stats().rounds << " rounds.\n";
  return 0;
}
