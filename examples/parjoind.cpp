// parjoind: a long-lived query-serving runtime over the MPC simulator.
//
// Usage:
//   example_parjoind [flags] <workload-file>
//   example_parjoind [flags] --demo[=<dir>]   (write + serve a sample)
//
// Flags:
//   --plan-cache-capacity=<n>    LRU plan cache entries (default 64, >= 1)
//   --load-budget=<tuples>       admission budget per batch in
//                                predicted-load units (0 = one query per
//                                batch; default 0)
//   --faults=<seed>              arm per-query deterministic fault
//                                injection
//   --checkpoint-interval=<r>    replicate state every r rounds (r >= 0)
//   --resume                     after a crash, fast-forward the replay
//                                over rounds the latest interval
//                                checkpoint covers instead of re-charging
//                                from round 1
//   --straggle-threshold=<f>     re-balance a straggled server's round
//                                load onto the others when the injected
//                                delay factor is >= f (f > 0; 0 = passive)
//   --load-budget-factor=<f>     per-round guardrail: abort rounds above
//                                f x predicted load and degrade (f > 0)
//   --replan                     on a load-budget abort, re-enter the
//                                planner with measured loads and run the
//                                cheapest remaining candidate instead of
//                                degrading straight to Yannakakis
//   --trace-out=<file>           write a parjoin-trace-v1 JSONL round
//                                trace of every execution (obs/trace.h)
//   --metrics-out=<file>         dump the metrics registry as JSON
//   --profile=<file>             persistent execution profile: merged
//                                across runs, written back on exit
//   --calibration=<file>         planner constant factors fitted from a
//                                profile (tools: query_runner
//                                --fit-calibration)
//
// The workload grammar lives in serve/spec.h: `register` relations once
// (load + Distribute + KMV sketches at registration), then `query` blocks
// whose edges reference them by @name. Queries are admitted FIFO with
// cost-model tickets against the load budget, planned through the plan
// cache, and executed with per-query isolation: a query that fails under
// injected faults reports an error and the server serves the next one.
// Exit codes: 0 served, 1 bad workload/registration, 2 bad flags.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/obs/metrics.h"
#include "parjoin/obs/profile.h"
#include "parjoin/obs/trace.h"
#include "parjoin/relation/io.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/serve/flags.h"
#include "parjoin/serve/server.h"
#include "parjoin/serve/spec.h"

namespace {

using S = parjoin::CountingSemiring;

// Observability flags: where to write the trace/metrics dumps and which
// profile/calibration files to use.
struct ObsPaths {
  std::string trace_out;
  std::string metrics_out;
  std::string profile;
  std::string calibration;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--plan-cache-capacity=<n>] [--load-budget=<tuples>]"
               " [--faults=<seed>] [--checkpoint-interval=<r>]"
               " [--resume] [--straggle-threshold=<f>]"
               " [--load-budget-factor=<f>] [--replan]"
               " [--trace-out=<file>]"
               " [--metrics-out=<file>] [--profile=<file>]"
               " [--calibration=<file>] <workload-file> | --demo[=<dir>]"
               "\n";
  return 2;
}

int RunWorkload(const parjoin::serve::WorkloadSpec& workload,
                parjoin::serve::ServerOptions server_options,
                const ObsPaths& obs_paths) {
  server_options.p = workload.p;

  // Profile store: prior runs merged in, this run's executions recorded,
  // written back on exit — the "gets faster with traffic" loop.
  parjoin::obs::ProfileStore profile;
  if (!obs_paths.profile.empty()) {
    auto loaded = parjoin::obs::ProfileStore::LoadOrEmpty(obs_paths.profile);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status() << "\n";
      return 1;
    }
    profile = std::move(loaded).value();
    server_options.exec.profile = &profile;
  }

  parjoin::plan::CalibrationTable calibration;
  if (!obs_paths.calibration.empty()) {
    auto loaded = parjoin::obs::LoadCalibrationFile(obs_paths.calibration);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status() << "\n";
      return 1;
    }
    calibration = std::move(loaded).value();
    server_options.planner.calibration = &calibration;
  }

  parjoin::obs::TraceRecorder trace("parjoind");
  if (!obs_paths.trace_out.empty()) {
    trace.Annotate("p", std::to_string(workload.p));
    server_options.observer = &trace;
  }

  parjoin::serve::Server<S> server(std::move(server_options));
  if (const parjoin::Status reg = server.RegisterWorkload(workload);
      !reg.ok()) {
    std::cerr << "error: " << reg << "\n";
    return 1;
  }
  for (const auto& r : workload.relations) {
    std::cout << "registered @" << r.name << " from " << r.path << "\n";
  }

  for (const auto& q : workload.queries) {
    for (int rep = 0; rep < q.repeat; ++rep) {
      const std::string label =
          q.repeat == 1 ? q.label : q.label + "#" + std::to_string(rep);
      if (const parjoin::Status s = server.Enqueue(q.spec, label);
          !s.ok()) {
        std::cerr << "error: " << s << "\n";
        return 1;
      }
    }
  }

  parjoin::Stopwatch drain_clock;
  const auto outcomes = server.Drain();
  const double drain_ms = drain_clock.ElapsedMillis();

  // First successful outcome of each query block writes its result file.
  std::size_t at = 0;
  for (const auto& q : workload.queries) {
    bool written = false;
    for (int rep = 0; rep < q.repeat; ++rep, ++at) {
      const auto& out = outcomes[at];
      std::printf("  %-12s %s batch %d %s plan %.3f ms, latency %.3f ms",
                  out.label.c_str(), out.status.ok() ? "ok " : "ERR",
                  out.batch, out.cache_hit ? "warm" : "cold", out.plan_ms,
                  out.latency_ms);
      if (out.status.ok()) {
        std::printf(", %lld tuples\n",
                    static_cast<long long>(out.result.size()));
      } else {
        std::printf(" (%s)\n", out.status.ToString().c_str());
      }
      if (!written && out.status.ok() && !q.spec.result_path.empty()) {
        if (const parjoin::Status saved = parjoin::SaveRelationCsv(
                q.spec.result_path, out.result);
            !saved.ok()) {
          std::cerr << "error: " << saved << "\n";
          return 1;
        }
        written = true;
      }
    }
  }

  const auto& m = server.metrics();
  const auto& c = server.plan_cache().counters();
  std::printf(
      "\nServed %lld/%lld queries (%lld failed) in %d batch(es), "
      "%.1f ms\n",
      static_cast<long long>(m.served),
      static_cast<long long>(m.enqueued),
      static_cast<long long>(m.failed), m.batches, drain_ms);
  std::printf(
      "Plan cache: %lld hit(s), %lld miss(es), %lld eviction(s) "
      "(hit rate %.2f)\n",
      static_cast<long long>(c.hits), static_cast<long long>(c.misses),
      static_cast<long long>(c.evictions),
      server.plan_cache().HitRate());
  if (m.cold_plans > 0 && m.warm_plans > 0) {
    std::printf("Planning: cold %.3f ms avg (%lld), warm %.3f ms avg "
                "(%lld)\n",
                m.cold_plan_ms_total / static_cast<double>(m.cold_plans),
                static_cast<long long>(m.cold_plans),
                m.warm_plan_ms_total / static_cast<double>(m.warm_plans),
                static_cast<long long>(m.warm_plans));
  }
  std::printf("Batches (admitted queries, ticket load%s):\n",
              server.options().load_budget > 0 ? ", carry-over" : "");
  for (const auto& b : server.batch_stats()) {
    std::printf("  batch %d: %d admitted, ticket load %.1f", b.batch,
                b.admitted, b.ticket_load);
    if (server.options().load_budget > 0) {
      std::printf("/%.1f", server.options().load_budget);
    }
    if (b.carried_in) std::printf(", carried-in query");
    if (b.carried_out) {
      std::printf(", carries '%s' out", b.carried_out_label.c_str());
    }
    std::printf("\n");
  }
  {
    auto& reg = server.metrics_registry();
    parjoin::obs::Histogram* latency = reg.GetHistogram(
        "query_latency_ms", parjoin::obs::DefaultLatencyBucketsMs());
    if (latency->Count() > 0) {
      std::printf("Latency: p50 %.3f ms, p99 %.3f ms; qps %.1f\n",
                  latency->Quantile(0.5), latency->Quantile(0.99),
                  reg.GetGauge("qps")->Value());
    }
  }

  if (!obs_paths.trace_out.empty()) {
    if (const parjoin::Status s = trace.WriteFile(obs_paths.trace_out);
        !s.ok()) {
      std::cerr << "error: " << s << "\n";
      return 1;
    }
    std::printf("Trace: %lld round(s), %lld event(s) -> %s\n",
                static_cast<long long>(trace.rounds().size()),
                static_cast<long long>(trace.events().size()),
                obs_paths.trace_out.c_str());
  }
  if (!obs_paths.metrics_out.empty()) {
    server.SyncMetrics();
    if (const parjoin::Status s =
            server.metrics_registry().WriteFile(obs_paths.metrics_out);
        !s.ok()) {
      std::cerr << "error: " << s << "\n";
      return 1;
    }
    std::printf("Metrics -> %s\n", obs_paths.metrics_out.c_str());
  }
  if (!obs_paths.profile.empty()) {
    if (const parjoin::Status s = profile.SaveFile(obs_paths.profile);
        !s.ok()) {
      std::cerr << "error: " << s << "\n";
      return 1;
    }
    std::printf("Profile: %lld cell(s), %lld run(s) -> %s\n",
                static_cast<long long>(profile.cells().size()),
                static_cast<long long>(profile.total_runs()),
                obs_paths.profile.c_str());
  }
  return 0;
}

// Writes a deterministic mixed demo workload: three query shapes (matmul,
// line, star) over four registered relations, 20 queries total.
parjoin::StatusOr<std::string> WriteDemoWorkload(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return parjoin::InvalidArgumentError("cannot create demo directory " +
                                         dir + ": " + ec.message());
  }
  {
    std::ofstream ab(dir + "/r_ab.csv");
    for (int a = 0; a < 30; ++a) {
      for (int b = a % 4; b < 12; b += 4) ab << a << "," << b << ",1\n";
    }
    std::ofstream bc(dir + "/r_bc.csv");
    for (int b = 0; b < 12; ++b) {
      for (int cv = b % 3; cv < 9; cv += 3) {
        bc << b << "," << cv << "," << (1 + b % 2) << "\n";
      }
    }
    std::ofstream cd(dir + "/r_cd.csv");
    for (int cv = 0; cv < 9; ++cv) {
      for (int d = cv % 2; d < 6; d += 2) cd << cv << "," << d << ",1\n";
    }
    std::ofstream bd(dir + "/r_bd.csv");
    for (int b = 0; b < 12; ++b) {
      for (int d = b % 2; d < 6; d += 2) bd << b << "," << d << ",1\n";
    }
  }
  const std::string path = dir + "/workload.spec";
  std::ofstream w(path);
  w << "# mixed demo workload: 3 shapes, 20 queries\n"
    << "p 8\n"
    << "register ab " << dir << "/r_ab.csv\n"
    << "register bc " << dir << "/r_bc.csv\n"
    << "register cd " << dir << "/r_cd.csv\n"
    << "register bd " << dir << "/r_bd.csv\n"
    << "query matmul\n"
    << "edge 0 1 @ab\n"
    << "edge 1 2 @bc\n"
    << "output 0 2\n"
    << "result " << dir << "/matmul.csv\n"
    << "repeat 8\n"
    << "end\n"
    << "query line\n"
    << "edge 0 1 @ab\n"
    << "edge 1 2 @bc\n"
    << "edge 2 3 @cd\n"
    << "output 0 3\n"
    << "repeat 6\n"
    << "end\n"
    << "query star\n"
    << "edge 0 1 @ab\n"
    << "edge 1 2 @bc\n"
    << "edge 1 3 @bd\n"
    << "output 0 2 3\n"
    << "repeat 6\n"
    << "end\n";
  if (!w) {
    return parjoin::DataLossError("write to " + path + " failed");
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  std::string demo_dir = "/tmp/parjoind_demo";
  parjoin::serve::ServerOptions server_options;
  ObsPaths obs_paths;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--demo") {
      demo = true;
    } else if (parjoin::serve::MatchFlag(arg, "demo", &value)) {
      demo = true;
      demo_dir = value;
    } else if (parjoin::serve::MatchFlag(arg, "plan-cache-capacity",
                                         &value)) {
      auto capacity =
          parjoin::serve::ParseInt64Flag("plan-cache-capacity", value);
      if (!capacity.ok() || *capacity < 1 || *capacity > 1000000) {
        std::cerr << "error: --plan-cache-capacity needs an integer in "
                     "[1, 1000000], got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      server_options.plan_cache_capacity =
          static_cast<std::size_t>(*capacity);
    } else if (parjoin::serve::MatchFlag(arg, "load-budget", &value)) {
      auto budget = parjoin::serve::ParseDoubleFlag("load-budget", value);
      if (!budget.ok() || *budget < 0) {
        std::cerr << "error: --load-budget needs a number >= 0, got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      server_options.load_budget = *budget;
    } else if (parjoin::serve::MatchFlag(arg, "faults", &value)) {
      auto seed = parjoin::serve::ParseUint64Flag("faults", value);
      if (!seed.ok()) {
        std::cerr << "error: " << seed.status() << "\n";
        return Usage(argv[0]);
      }
      server_options.exec.faults.enabled = true;
      server_options.exec.faults.seed = *seed;
      if (server_options.exec.checkpoint_interval == 0) {
        server_options.exec.checkpoint_interval = 2;
      }
    } else if (parjoin::serve::MatchFlag(arg, "checkpoint-interval",
                                         &value)) {
      auto interval =
          parjoin::serve::ParseInt64Flag("checkpoint-interval", value);
      if (!interval.ok() || *interval < 0 || *interval > 1000000) {
        std::cerr << "error: --checkpoint-interval needs an integer in "
                     "[0, 1000000], got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      server_options.exec.checkpoint_interval =
          static_cast<int>(*interval);
    } else if (arg == "--resume") {
      server_options.exec.resume_from_checkpoint = true;
    } else if (arg == "--replan") {
      server_options.exec.replan_on_budget_abort = true;
    } else if (parjoin::serve::MatchFlag(arg, "straggle-threshold",
                                         &value)) {
      auto threshold =
          parjoin::serve::ParseDoubleFlag("straggle-threshold", value);
      if (!threshold.ok() || *threshold <= 0) {
        std::cerr << "error: --straggle-threshold needs a number > 0, "
                     "got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      server_options.exec.straggle_threshold = *threshold;
    } else if (parjoin::serve::MatchFlag(arg, "load-budget-factor",
                                         &value)) {
      auto factor =
          parjoin::serve::ParseDoubleFlag("load-budget-factor", value);
      if (!factor.ok() || *factor <= 0) {
        std::cerr << "error: --load-budget-factor needs a number > 0, "
                     "got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      server_options.exec.load_budget_factor = *factor;
    } else if (parjoin::serve::MatchFlag(arg, "trace-out", &value)) {
      if (value.empty()) {
        std::cerr << "error: --trace-out needs a file path\n";
        return Usage(argv[0]);
      }
      obs_paths.trace_out = value;
    } else if (parjoin::serve::MatchFlag(arg, "metrics-out", &value)) {
      if (value.empty()) {
        std::cerr << "error: --metrics-out needs a file path\n";
        return Usage(argv[0]);
      }
      obs_paths.metrics_out = value;
    } else if (parjoin::serve::MatchFlag(arg, "profile", &value)) {
      if (value.empty()) {
        std::cerr << "error: --profile needs a file path\n";
        return Usage(argv[0]);
      }
      obs_paths.profile = value;
    } else if (parjoin::serve::MatchFlag(arg, "calibration", &value)) {
      if (value.empty()) {
        std::cerr << "error: --calibration needs a file path\n";
        return Usage(argv[0]);
      }
      obs_paths.calibration = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return Usage(argv[0]);
    } else {
      args.push_back(arg);
    }
  }

  std::string workload_path;
  if (demo) {
    if (!args.empty()) {
      std::cerr << "error: --demo takes no workload file\n";
      return Usage(argv[0]);
    }
    auto written = WriteDemoWorkload(demo_dir);
    if (!written.ok()) {
      std::cerr << "error: " << written.status() << "\n";
      return 1;
    }
    workload_path = *written;
    std::cout << "Demo workload written to " << workload_path << "\n\n";
  } else if (args.size() == 1) {
    workload_path = args[0];
  } else {
    return Usage(argv[0]);
  }

  auto workload = parjoin::serve::ParseWorkloadFile(workload_path);
  if (!workload.ok()) {
    std::cerr << "error: " << workload.status() << "\n";
    return 1;
  }
  return RunWorkload(*workload, std::move(server_options), obs_paths);
}
