// query_runner: run an arbitrary tree join-aggregate query from files.
//
// Usage:
//   example_query_runner [flags] <spec-file>
//   example_query_runner --demo        (writes and runs a sample spec)
//
// Flags:
//   --json                       also dump the plan as JSON
//   --faults=<seed>              deterministic fault injection (crash +
//                                straggler + corrupted message per run)
//   --checkpoint-interval=<r>    replicate state every r rounds
//   --load-budget-factor=<f>     abort rounds above f x predicted load and
//                                degrade onto the Yannakakis baseline
//
// Spec format (one directive per line; '#' comments):
//   p <servers>                        cluster size (default 16)
//   edge <attrU> <attrV> <csv-path>    one relation per edge
//   output <attr> [<attr> ...]         the output attributes y
//   result <csv-path>                  where to write the result
//
// Relations are CSVs of "v1,v2,annotation" rows (counting semiring).
// The runner plans the query with the cost-based planner (classification,
// OUT/J estimation, candidate scoring), executes the chosen algorithm via
// plan::PlanAndRun, prints the plan with predicted vs. measured load (and
// the recovery report when resilience is on), and writes the aggregated
// result. Malformed specs and CSVs surface as Status errors and a non-zero
// exit — never an abort.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/plan/executor.h"
#include "parjoin/relation/io.h"
#include "parjoin/semiring/semirings.h"

namespace {

using S = parjoin::CountingSemiring;

struct SpecEdge {
  parjoin::AttrId u = 0;
  parjoin::AttrId v = 0;
  std::string path;
};

struct Spec {
  int p = 16;
  std::vector<SpecEdge> edges;
  std::vector<parjoin::AttrId> outputs;
  std::string result_path = "result.csv";
};

parjoin::StatusOr<Spec> ParseSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return parjoin::NotFoundError("cannot open spec " + path);
  }
  Spec spec;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "p") {
      tokens >> spec.p;
      if (tokens.fail() || spec.p < 1) {
        return parjoin::InvalidArgumentError(
            path + ":" + std::to_string(line_number) +
            ": 'p' needs a positive server count");
      }
    } else if (directive == "edge") {
      SpecEdge e;
      tokens >> e.u >> e.v >> e.path;
      if (tokens.fail() || e.path.empty()) {
        return parjoin::InvalidArgumentError(
            path + ":" + std::to_string(line_number) +
            ": 'edge' needs <attrU> <attrV> <csv-path>");
      }
      spec.edges.push_back(e);
    } else if (directive == "output") {
      parjoin::AttrId a;
      while (tokens >> a) spec.outputs.push_back(a);
    } else if (directive == "result") {
      tokens >> spec.result_path;
    } else {
      return parjoin::InvalidArgumentError(
          path + ":" + std::to_string(line_number) +
          ": unknown directive '" + directive + "'");
    }
  }
  if (spec.edges.empty()) {
    return parjoin::InvalidArgumentError("spec has no edges");
  }
  return spec;
}

int RunSpec(const Spec& spec, bool dump_json,
            const parjoin::plan::ExecutionOptions& exec_options) {
  std::vector<parjoin::QueryEdge> edges;
  for (const auto& e : spec.edges) edges.push_back({e.u, e.v});
  auto query = parjoin::JoinTree::Create(edges, spec.outputs);
  if (!query.ok()) {
    std::cerr << "error: invalid query: " << query.status() << "\n";
    return 1;
  }

  parjoin::mpc::Cluster cluster(spec.p);
  parjoin::TreeInstance<S> instance{std::move(query).value(), {}};
  for (const auto& e : spec.edges) {
    auto rel =
        parjoin::LoadRelationCsv<S>(e.path, parjoin::Schema{e.u, e.v});
    if (!rel.ok()) {
      std::cerr << "error: " << rel.status() << "\n";
      return 1;
    }
    std::cout << "  loaded " << e.path << ": " << rel->size() << " tuples\n";
    instance.relations.push_back(
        parjoin::Distribute(cluster, std::move(rel).value()));
  }
  if (const parjoin::Status valid = instance.ValidateStatus(); !valid.ok()) {
    std::cerr << "error: " << valid << "\n";
    return 1;
  }

  auto exec = parjoin::plan::PlanAndRun(cluster, std::move(instance),
                                        parjoin::plan::PlannerOptions{},
                                        exec_options);
  std::cout << "\n" << exec.plan.ToText() << "\n";
  if (dump_json) std::cout << exec.plan.ToJson() << "\n\n";
  parjoin::Relation<S> local = exec.result.ToLocal();
  local.Normalize();

  if (const parjoin::Status saved =
          parjoin::SaveRelationCsv(spec.result_path, local);
      !saved.ok()) {
    std::cerr << "error: " << saved << "\n";
    return 1;
  }
  const auto& xs = exec.plan.execution_stats;
  std::cout << "Result: " << local.size() << " tuples -> "
            << spec.result_path << "\n"
            << parjoin::plan::PredictedVsMeasuredReport(exec.plan) << "\n"
            << "Cost: planning load " << exec.plan.planning_stats.max_load
            << " (" << exec.plan.planning_stats.rounds << " rounds), "
            << "execution load " << xs.max_load << " (" << xs.rounds
            << " rounds), " << xs.total_comm
            << " tuples moved, critical path " << xs.critical_path
            << " (p = " << spec.p << ")\n";
  if (xs.recovery_comm > 0 || exec.plan.recovery.attempts > 1) {
    const auto& rec = exec.plan.recovery;
    std::cout << "Recovery: " << rec.attempts << " attempt(s), "
              << rec.crashes << " crash(es), " << xs.retransmits
              << " retransmit(s), " << xs.recovery_comm
              << " recovery tuples"
              << (rec.degraded_to_baseline ? ", degraded to baseline" : "")
              << "\n";
    for (const std::string& event : rec.events) {
      std::cout << "  - " << event << "\n";
    }
  }
  return 0;
}

int WriteDemoAndRun(bool dump_json,
                    const parjoin::plan::ExecutionOptions& exec_options) {
  const std::string dir = "/tmp/parjoin_demo";
  (void)system(("mkdir -p " + dir).c_str());
  // A 3-chain: suppliers -> parts -> regions.
  {
    std::ofstream r1(dir + "/supplies.csv");
    for (int s = 0; s < 40; ++s) {
      for (int part = s % 5; part < 20; part += 5) {
        r1 << s << "," << part << ",1\n";
      }
    }
    std::ofstream r2(dir + "/ships_to.csv");
    for (int part = 0; part < 20; ++part) {
      for (int region = part % 3; region < 9; region += 3) {
        r2 << part << "," << region << "," << (1 + part % 4) << "\n";
      }
    }
  }
  {
    std::ofstream spec(dir + "/query.spec");
    spec << "# how many supply routes connect each (supplier, region)?\n"
         << "p 8\n"
         << "edge 0 1 " << dir << "/supplies.csv\n"
         << "edge 1 2 " << dir << "/ships_to.csv\n"
         << "output 0 2\n"
         << "result " << dir << "/routes.csv\n";
  }
  auto spec = ParseSpec(dir + "/query.spec");
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  std::cout << "Demo spec written to " << dir << "/query.spec\n\n";
  return RunSpec(*spec, dump_json, exec_options);
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_json = false;
  parjoin::plan::ExecutionOptions exec_options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      dump_json = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      exec_options.faults.enabled = true;
      exec_options.faults.seed =
          std::strtoull(arg.c_str() + 9, nullptr, 10);
      if (exec_options.checkpoint_interval == 0) {
        exec_options.checkpoint_interval = 2;
      }
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      exec_options.checkpoint_interval =
          static_cast<int>(std::strtol(arg.c_str() + 22, nullptr, 10));
    } else if (arg.rfind("--load-budget-factor=", 0) == 0) {
      exec_options.load_budget_factor =
          std::strtod(arg.c_str() + 21, nullptr);
    } else {
      args.push_back(arg);
    }
  }
  if (args.size() == 1 && args[0] == "--demo") {
    return WriteDemoAndRun(dump_json, exec_options);
  }
  if (args.size() != 1) {
    std::cerr << "usage: " << argv[0]
              << " [--json] [--faults=<seed>] [--checkpoint-interval=<r>]"
                 " [--load-budget-factor=<f>] <spec-file> | --demo\n";
    return 2;
  }
  auto spec = ParseSpec(args[0]);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  return RunSpec(*spec, dump_json, exec_options);
}
