// query_runner: run an arbitrary tree join-aggregate query from files.
//
// Usage:
//   example_query_runner [flags] <spec-file>
//   example_query_runner [flags] --demo[=<dir>]   (write + run a sample)
//
// Flags:
//   --json                       also dump the plan as JSON
//   --faults=<seed>              deterministic fault injection (crash +
//                                straggler + corrupted message per run)
//   --checkpoint-interval=<r>    replicate state every r rounds (r >= 0)
//   --resume                     after a crash, fast-forward the replay
//                                over the rounds the latest interval
//                                checkpoint covers instead of re-charging
//                                them (needs --checkpoint-interval > 0)
//   --straggle-threshold=<f>     actively re-balance injected straggles
//                                with delay factor >= f onto the other
//                                live servers (f > 0; default passive)
//   --load-budget-factor=<f>     abort rounds above f x predicted load and
//                                degrade onto the Yannakakis baseline
//                                (f > 0)
//   --replan                     on a load-budget abort, re-enter the
//                                planner with the measured load and run
//                                the cheapest remaining candidate instead
//                                of degrading immediately
//   --trace-out=<file>           write a parjoin-trace-v1 JSONL round
//                                trace of the execution
//   --profile=<file>             merge predicted-vs-measured samples from
//                                this run into a parjoin-profile-v1 store
//                                (created if missing)
//   --calibration=<file>         load a parjoin-calibration-v1 table and
//                                plan with profile-calibrated constants
//   --fit-calibration=<file>     after the run, fit the (updated) profile
//                                store into a calibration file (needs
//                                --profile)
//
// The spec grammar lives in serve/spec.h (shared with parjoind); this
// binary accepts CSV-path edge sources only — @name references need a
// parjoind registry. Relations are CSVs of "v1,v2,annotation" rows
// (counting semiring). The runner plans the query with the cost-based
// planner, executes the chosen algorithm via plan::PlanAndRun, prints the
// plan with predicted vs. measured load (and the recovery report when
// resilience is on), and writes the aggregated result. Malformed specs
// and CSVs exit 1 with the offending line; malformed flags exit 2 with
// usage — never a silent default, never an abort.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/obs/profile.h"
#include "parjoin/obs/trace.h"
#include "parjoin/plan/executor.h"
#include "parjoin/relation/io.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/serve/flags.h"
#include "parjoin/serve/spec.h"

namespace {

using S = parjoin::CountingSemiring;

// Observability file paths (all optional; empty = off).
struct ObsOptions {
  std::string trace_out;
  std::string profile;
  std::string calibration;
  std::string fit_calibration;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--faults=<seed>] [--checkpoint-interval=<r>]"
               " [--resume] [--straggle-threshold=<f>]"
               " [--load-budget-factor=<f>] [--replan] [--trace-out=<file>]"
               " [--profile=<file>] [--calibration=<file>]"
               " [--fit-calibration=<file>]"
               " <spec-file> | --demo[=<dir>]\n";
  return 2;
}

int RunSpec(const parjoin::serve::QuerySpec& spec, bool dump_json,
            parjoin::plan::ExecutionOptions exec_options,
            const ObsOptions& obs) {
  std::vector<parjoin::QueryEdge> edges;
  for (const auto& e : spec.edges) edges.push_back({e.u, e.v});
  auto query = parjoin::JoinTree::Create(edges, spec.outputs);
  if (!query.ok()) {
    std::cerr << "error: invalid query: " << query.status() << "\n";
    return 1;
  }

  parjoin::mpc::Cluster cluster(spec.p);
  parjoin::TreeInstance<S> instance{std::move(query).value(), {}};
  for (const auto& e : spec.edges) {
    auto rel =
        parjoin::LoadRelationCsv<S>(e.source, parjoin::Schema{e.u, e.v});
    if (!rel.ok()) {
      std::cerr << "error: " << rel.status() << "\n";
      return 1;
    }
    std::cout << "  loaded " << e.source << ": " << rel->size()
              << " tuples\n";
    instance.relations.push_back(
        parjoin::Distribute(cluster, std::move(rel).value()));
  }
  if (const parjoin::Status valid = instance.ValidateStatus(); !valid.ok()) {
    std::cerr << "error: " << valid << "\n";
    return 1;
  }

  parjoin::plan::PlannerOptions planner_options;
  parjoin::plan::CalibrationTable calibration;
  if (!obs.calibration.empty()) {
    auto loaded = parjoin::obs::LoadCalibrationFile(obs.calibration);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status() << "\n";
      return 1;
    }
    calibration = std::move(loaded).value();
    planner_options.calibration = &calibration;
    std::cout << "  calibration: " << calibration.entries().size()
              << " factor(s) from " << obs.calibration << "\n";
  }
  parjoin::obs::ProfileStore profile;
  if (!obs.profile.empty()) {
    auto loaded = parjoin::obs::ProfileStore::LoadOrEmpty(obs.profile);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status() << "\n";
      return 1;
    }
    profile = std::move(loaded).value();
    exec_options.profile = &profile;
  }
  parjoin::obs::TraceRecorder trace("query_runner");
  if (!obs.trace_out.empty()) {
    trace.Annotate("p", std::to_string(spec.p));
    cluster.SetObserver(&trace);
  }

  auto exec = parjoin::plan::PlanAndRun(cluster, std::move(instance),
                                        planner_options, exec_options);
  std::cout << "\n" << exec.plan.ToText() << "\n";
  if (dump_json) std::cout << exec.plan.ToJson() << "\n\n";
  parjoin::Relation<S> local = exec.result.ToLocal();
  local.Normalize();

  const std::string result_path =
      spec.result_path.empty() ? "result.csv" : spec.result_path;
  if (const parjoin::Status saved =
          parjoin::SaveRelationCsv(result_path, local);
      !saved.ok()) {
    std::cerr << "error: " << saved << "\n";
    return 1;
  }
  const auto& xs = exec.plan.execution_stats;
  std::cout << "Result: " << local.size() << " tuples -> " << result_path
            << "\n"
            << parjoin::plan::PredictedVsMeasuredReport(exec.plan) << "\n"
            << "Cost: planning load " << exec.plan.planning_stats.max_load
            << " (" << exec.plan.planning_stats.rounds << " rounds), "
            << "execution load " << xs.max_load << " (" << xs.rounds
            << " rounds), " << xs.total_comm
            << " tuples moved, critical path " << xs.critical_path
            << " (p = " << spec.p << ")\n";
  if (xs.recovery_comm > 0 || exec.plan.recovery.attempts > 1) {
    const auto& rec = exec.plan.recovery;
    std::cout << "Recovery: " << rec.attempts << " attempt(s), "
              << rec.crashes << " crash(es), " << xs.retransmits
              << " retransmit(s), " << xs.recovery_comm
              << " recovery tuples"
              << (rec.degraded_to_baseline ? ", degraded to baseline" : "")
              << "\n";
    for (const std::string& event : rec.events) {
      std::cout << "  - " << event << "\n";
    }
  }
  if (!obs.trace_out.empty()) {
    if (const parjoin::Status saved = trace.WriteFile(obs.trace_out);
        !saved.ok()) {
      std::cerr << "error: " << saved << "\n";
      return 1;
    }
    std::cout << "Trace: " << trace.rounds().size() << " round(s), "
              << trace.events().size() << " event(s) -> " << obs.trace_out
              << "\n";
  }
  if (!obs.profile.empty()) {
    if (const parjoin::Status saved = profile.SaveFile(obs.profile);
        !saved.ok()) {
      std::cerr << "error: " << saved << "\n";
      return 1;
    }
    std::cout << "Profile: " << profile.cells().size() << " cell(s), "
              << profile.total_runs() << " run(s) -> " << obs.profile
              << "\n";
  }
  if (!obs.fit_calibration.empty()) {
    const parjoin::plan::CalibrationTable fitted =
        parjoin::obs::FitCalibration(profile);
    if (const parjoin::Status saved =
            parjoin::obs::SaveCalibrationFile(fitted, obs.fit_calibration);
        !saved.ok()) {
      std::cerr << "error: " << saved << "\n";
      return 1;
    }
    std::cout << "Calibration: " << fitted.entries().size()
              << " factor(s) -> " << obs.fit_calibration << "\n";
  }
  return 0;
}

int WriteDemoAndRun(const std::string& dir, bool dump_json,
                    const parjoin::plan::ExecutionOptions& exec_options,
                    const ObsOptions& obs) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "error: cannot create demo directory " << dir << ": "
              << ec.message() << "\n";
    return 1;
  }
  // A 3-chain: suppliers -> parts -> regions.
  {
    std::ofstream r1(dir + "/supplies.csv");
    for (int s = 0; s < 40; ++s) {
      for (int part = s % 5; part < 20; part += 5) {
        r1 << s << "," << part << ",1\n";
      }
    }
    std::ofstream r2(dir + "/ships_to.csv");
    for (int part = 0; part < 20; ++part) {
      for (int region = part % 3; region < 9; region += 3) {
        r2 << part << "," << region << "," << (1 + part % 4) << "\n";
      }
    }
  }
  {
    std::ofstream spec(dir + "/query.spec");
    spec << "# how many supply routes connect each (supplier, region)?\n"
         << "p 8\n"
         << "edge 0 1 " << dir << "/supplies.csv\n"
         << "edge 1 2 " << dir << "/ships_to.csv\n"
         << "output 0 2\n"
         << "result " << dir << "/routes.csv\n";
  }
  auto spec = parjoin::serve::ParseQuerySpecFile(dir + "/query.spec");
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  std::cout << "Demo spec written to " << dir << "/query.spec\n\n";
  return RunSpec(*spec, dump_json, exec_options, obs);
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_json = false;
  bool demo = false;
  std::string demo_dir = "/tmp/parjoin_demo";
  parjoin::plan::ExecutionOptions exec_options;
  ObsOptions obs;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--json") {
      dump_json = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (parjoin::serve::MatchFlag(arg, "demo", &value)) {
      demo = true;
      demo_dir = value;
    } else if (parjoin::serve::MatchFlag(arg, "faults", &value)) {
      auto seed = parjoin::serve::ParseUint64Flag("faults", value);
      if (!seed.ok()) {
        std::cerr << "error: " << seed.status() << "\n";
        return Usage(argv[0]);
      }
      exec_options.faults.enabled = true;
      exec_options.faults.seed = *seed;
      if (exec_options.checkpoint_interval == 0) {
        exec_options.checkpoint_interval = 2;
      }
    } else if (parjoin::serve::MatchFlag(arg, "checkpoint-interval",
                                         &value)) {
      auto interval =
          parjoin::serve::ParseInt64Flag("checkpoint-interval", value);
      if (!interval.ok() || *interval < 0 || *interval > 1000000) {
        std::cerr << "error: --checkpoint-interval needs an integer in "
                     "[0, 1000000], got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      exec_options.checkpoint_interval = static_cast<int>(*interval);
    } else if (arg == "--resume") {
      exec_options.resume_from_checkpoint = true;
    } else if (arg == "--replan") {
      exec_options.replan_on_budget_abort = true;
    } else if (parjoin::serve::MatchFlag(arg, "straggle-threshold",
                                         &value)) {
      auto threshold =
          parjoin::serve::ParseDoubleFlag("straggle-threshold", value);
      if (!threshold.ok() || *threshold <= 0) {
        std::cerr << "error: --straggle-threshold needs a number > 0, "
                     "got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      exec_options.straggle_threshold = *threshold;
    } else if (parjoin::serve::MatchFlag(arg, "load-budget-factor",
                                         &value)) {
      auto factor =
          parjoin::serve::ParseDoubleFlag("load-budget-factor", value);
      if (!factor.ok() || *factor <= 0) {
        std::cerr << "error: --load-budget-factor needs a number > 0, "
                     "got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      exec_options.load_budget_factor = *factor;
    } else if (parjoin::serve::MatchFlag(arg, "trace-out", &value)) {
      if (value.empty()) {
        std::cerr << "error: --trace-out needs a file path\n";
        return Usage(argv[0]);
      }
      obs.trace_out = value;
    } else if (parjoin::serve::MatchFlag(arg, "profile", &value)) {
      if (value.empty()) {
        std::cerr << "error: --profile needs a file path\n";
        return Usage(argv[0]);
      }
      obs.profile = value;
    } else if (parjoin::serve::MatchFlag(arg, "calibration", &value)) {
      if (value.empty()) {
        std::cerr << "error: --calibration needs a file path\n";
        return Usage(argv[0]);
      }
      obs.calibration = value;
    } else if (parjoin::serve::MatchFlag(arg, "fit-calibration", &value)) {
      if (value.empty()) {
        std::cerr << "error: --fit-calibration needs a file path\n";
        return Usage(argv[0]);
      }
      obs.fit_calibration = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return Usage(argv[0]);
    } else {
      args.push_back(arg);
    }
  }
  if (!obs.fit_calibration.empty() && obs.profile.empty()) {
    std::cerr << "error: --fit-calibration needs --profile\n";
    return Usage(argv[0]);
  }
  if (demo) {
    if (!args.empty()) {
      std::cerr << "error: --demo takes no spec file\n";
      return Usage(argv[0]);
    }
    return WriteDemoAndRun(demo_dir, dump_json, exec_options, obs);
  }
  if (args.size() != 1) {
    return Usage(argv[0]);
  }
  auto spec = parjoin::serve::ParseQuerySpecFile(args[0]);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  for (const auto& e : spec->edges) {
    if (e.IsRef()) {
      std::cerr << "error: edge source '" << e.source
                << "' is a relation reference; @name sources need the "
                   "parjoind registry\n";
      return 1;
    }
  }
  return RunSpec(*spec, dump_json, exec_options, obs);
}
