// query_runner: run an arbitrary tree join-aggregate query from files.
//
// Usage:
//   example_query_runner [flags] <spec-file>
//   example_query_runner [flags] --demo[=<dir>]   (write + run a sample)
//
// Flags:
//   --json                       also dump the plan as JSON
//   --faults=<seed>              deterministic fault injection (crash +
//                                straggler + corrupted message per run)
//   --checkpoint-interval=<r>    replicate state every r rounds (r >= 0)
//   --load-budget-factor=<f>     abort rounds above f x predicted load and
//                                degrade onto the Yannakakis baseline
//                                (f > 0)
//
// The spec grammar lives in serve/spec.h (shared with parjoind); this
// binary accepts CSV-path edge sources only — @name references need a
// parjoind registry. Relations are CSVs of "v1,v2,annotation" rows
// (counting semiring). The runner plans the query with the cost-based
// planner, executes the chosen algorithm via plan::PlanAndRun, prints the
// plan with predicted vs. measured load (and the recovery report when
// resilience is on), and writes the aggregated result. Malformed specs
// and CSVs exit 1 with the offending line; malformed flags exit 2 with
// usage — never a silent default, never an abort.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/plan/executor.h"
#include "parjoin/relation/io.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/serve/flags.h"
#include "parjoin/serve/spec.h"

namespace {

using S = parjoin::CountingSemiring;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--faults=<seed>] [--checkpoint-interval=<r>]"
               " [--load-budget-factor=<f>] <spec-file> | --demo[=<dir>]\n";
  return 2;
}

int RunSpec(const parjoin::serve::QuerySpec& spec, bool dump_json,
            const parjoin::plan::ExecutionOptions& exec_options) {
  std::vector<parjoin::QueryEdge> edges;
  for (const auto& e : spec.edges) edges.push_back({e.u, e.v});
  auto query = parjoin::JoinTree::Create(edges, spec.outputs);
  if (!query.ok()) {
    std::cerr << "error: invalid query: " << query.status() << "\n";
    return 1;
  }

  parjoin::mpc::Cluster cluster(spec.p);
  parjoin::TreeInstance<S> instance{std::move(query).value(), {}};
  for (const auto& e : spec.edges) {
    auto rel =
        parjoin::LoadRelationCsv<S>(e.source, parjoin::Schema{e.u, e.v});
    if (!rel.ok()) {
      std::cerr << "error: " << rel.status() << "\n";
      return 1;
    }
    std::cout << "  loaded " << e.source << ": " << rel->size()
              << " tuples\n";
    instance.relations.push_back(
        parjoin::Distribute(cluster, std::move(rel).value()));
  }
  if (const parjoin::Status valid = instance.ValidateStatus(); !valid.ok()) {
    std::cerr << "error: " << valid << "\n";
    return 1;
  }

  auto exec = parjoin::plan::PlanAndRun(cluster, std::move(instance),
                                        parjoin::plan::PlannerOptions{},
                                        exec_options);
  std::cout << "\n" << exec.plan.ToText() << "\n";
  if (dump_json) std::cout << exec.plan.ToJson() << "\n\n";
  parjoin::Relation<S> local = exec.result.ToLocal();
  local.Normalize();

  const std::string result_path =
      spec.result_path.empty() ? "result.csv" : spec.result_path;
  if (const parjoin::Status saved =
          parjoin::SaveRelationCsv(result_path, local);
      !saved.ok()) {
    std::cerr << "error: " << saved << "\n";
    return 1;
  }
  const auto& xs = exec.plan.execution_stats;
  std::cout << "Result: " << local.size() << " tuples -> " << result_path
            << "\n"
            << parjoin::plan::PredictedVsMeasuredReport(exec.plan) << "\n"
            << "Cost: planning load " << exec.plan.planning_stats.max_load
            << " (" << exec.plan.planning_stats.rounds << " rounds), "
            << "execution load " << xs.max_load << " (" << xs.rounds
            << " rounds), " << xs.total_comm
            << " tuples moved, critical path " << xs.critical_path
            << " (p = " << spec.p << ")\n";
  if (xs.recovery_comm > 0 || exec.plan.recovery.attempts > 1) {
    const auto& rec = exec.plan.recovery;
    std::cout << "Recovery: " << rec.attempts << " attempt(s), "
              << rec.crashes << " crash(es), " << xs.retransmits
              << " retransmit(s), " << xs.recovery_comm
              << " recovery tuples"
              << (rec.degraded_to_baseline ? ", degraded to baseline" : "")
              << "\n";
    for (const std::string& event : rec.events) {
      std::cout << "  - " << event << "\n";
    }
  }
  return 0;
}

int WriteDemoAndRun(const std::string& dir, bool dump_json,
                    const parjoin::plan::ExecutionOptions& exec_options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "error: cannot create demo directory " << dir << ": "
              << ec.message() << "\n";
    return 1;
  }
  // A 3-chain: suppliers -> parts -> regions.
  {
    std::ofstream r1(dir + "/supplies.csv");
    for (int s = 0; s < 40; ++s) {
      for (int part = s % 5; part < 20; part += 5) {
        r1 << s << "," << part << ",1\n";
      }
    }
    std::ofstream r2(dir + "/ships_to.csv");
    for (int part = 0; part < 20; ++part) {
      for (int region = part % 3; region < 9; region += 3) {
        r2 << part << "," << region << "," << (1 + part % 4) << "\n";
      }
    }
  }
  {
    std::ofstream spec(dir + "/query.spec");
    spec << "# how many supply routes connect each (supplier, region)?\n"
         << "p 8\n"
         << "edge 0 1 " << dir << "/supplies.csv\n"
         << "edge 1 2 " << dir << "/ships_to.csv\n"
         << "output 0 2\n"
         << "result " << dir << "/routes.csv\n";
  }
  auto spec = parjoin::serve::ParseQuerySpecFile(dir + "/query.spec");
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  std::cout << "Demo spec written to " << dir << "/query.spec\n\n";
  return RunSpec(*spec, dump_json, exec_options);
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_json = false;
  bool demo = false;
  std::string demo_dir = "/tmp/parjoin_demo";
  parjoin::plan::ExecutionOptions exec_options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--json") {
      dump_json = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (parjoin::serve::MatchFlag(arg, "demo", &value)) {
      demo = true;
      demo_dir = value;
    } else if (parjoin::serve::MatchFlag(arg, "faults", &value)) {
      auto seed = parjoin::serve::ParseUint64Flag("faults", value);
      if (!seed.ok()) {
        std::cerr << "error: " << seed.status() << "\n";
        return Usage(argv[0]);
      }
      exec_options.faults.enabled = true;
      exec_options.faults.seed = *seed;
      if (exec_options.checkpoint_interval == 0) {
        exec_options.checkpoint_interval = 2;
      }
    } else if (parjoin::serve::MatchFlag(arg, "checkpoint-interval",
                                         &value)) {
      auto interval =
          parjoin::serve::ParseInt64Flag("checkpoint-interval", value);
      if (!interval.ok() || *interval < 0 || *interval > 1000000) {
        std::cerr << "error: --checkpoint-interval needs an integer in "
                     "[0, 1000000], got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      exec_options.checkpoint_interval = static_cast<int>(*interval);
    } else if (parjoin::serve::MatchFlag(arg, "load-budget-factor",
                                         &value)) {
      auto factor =
          parjoin::serve::ParseDoubleFlag("load-budget-factor", value);
      if (!factor.ok() || *factor <= 0) {
        std::cerr << "error: --load-budget-factor needs a number > 0, "
                     "got '"
                  << value << "'\n";
        return Usage(argv[0]);
      }
      exec_options.load_budget_factor = *factor;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return Usage(argv[0]);
    } else {
      args.push_back(arg);
    }
  }
  if (demo) {
    if (!args.empty()) {
      std::cerr << "error: --demo takes no spec file\n";
      return Usage(argv[0]);
    }
    return WriteDemoAndRun(demo_dir, dump_json, exec_options);
  }
  if (args.size() != 1) {
    return Usage(argv[0]);
  }
  auto spec = parjoin::serve::ParseQuerySpecFile(args[0]);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status() << "\n";
    return 1;
  }
  for (const auto& e : spec->edges) {
    if (e.IsRef()) {
      std::cerr << "error: edge source '" << e.source
                << "' is a relation reference; @name sources need the "
                   "parjoind registry\n";
      return 1;
    }
  }
  return RunSpec(*spec, dump_json, exec_options);
}
