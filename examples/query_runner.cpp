// query_runner: run an arbitrary tree join-aggregate query from files.
//
// Usage:
//   example_query_runner <spec-file>
//   example_query_runner --demo        (writes and runs a sample spec)
//
// Spec format (one directive per line; '#' comments):
//   p <servers>                        cluster size (default 16)
//   edge <attrU> <attrV> <csv-path>    one relation per edge
//   output <attr> [<attr> ...]         the output attributes y
//   result <csv-path>                  where to write the result
//
// Relations are CSVs of "v1,v2,annotation" rows (counting semiring).
// The runner plans the query with the cost-based planner (classification,
// OUT/J estimation, candidate scoring), executes the chosen algorithm via
// plan::PlanAndRun, prints the plan with predicted vs. measured load, and
// writes the aggregated result. Pass --json to additionally dump the plan
// as machine-readable JSON.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "parjoin/plan/executor.h"
#include "parjoin/relation/io.h"
#include "parjoin/semiring/semirings.h"

namespace {

using S = parjoin::CountingSemiring;

struct SpecEdge {
  parjoin::AttrId u = 0;
  parjoin::AttrId v = 0;
  std::string path;
};

struct Spec {
  int p = 16;
  std::vector<SpecEdge> edges;
  std::vector<parjoin::AttrId> outputs;
  std::string result_path = "result.csv";
};

bool ParseSpec(const std::string& path, Spec* spec, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open spec " + path;
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "p") {
      tokens >> spec->p;
    } else if (directive == "edge") {
      SpecEdge e;
      tokens >> e.u >> e.v >> e.path;
      spec->edges.push_back(e);
    } else if (directive == "output") {
      parjoin::AttrId a;
      while (tokens >> a) spec->outputs.push_back(a);
    } else if (directive == "result") {
      tokens >> spec->result_path;
    } else {
      *error = path + ":" + std::to_string(line_number) +
               ": unknown directive '" + directive + "'";
      return false;
    }
    if (tokens.bad()) {
      *error = path + ":" + std::to_string(line_number) + ": parse error";
      return false;
    }
  }
  if (spec->edges.empty()) {
    *error = "spec has no edges";
    return false;
  }
  return true;
}

int RunSpec(const Spec& spec, bool dump_json) {
  std::vector<parjoin::QueryEdge> edges;
  for (const auto& e : spec.edges) edges.push_back({e.u, e.v});
  parjoin::JoinTree query(edges, spec.outputs);

  parjoin::mpc::Cluster cluster(spec.p);
  parjoin::TreeInstance<S> instance{query, {}};
  for (const auto& e : spec.edges) {
    parjoin::Relation<S> rel;
    std::string error;
    if (!parjoin::LoadRelationCsv(e.path, parjoin::Schema{e.u, e.v}, &rel,
                                  &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    std::cout << "  loaded " << e.path << ": " << rel.size() << " tuples\n";
    instance.relations.push_back(parjoin::Distribute(cluster, rel));
  }

  auto exec = parjoin::plan::PlanAndRun(cluster, std::move(instance));
  std::cout << "\n" << exec.plan.ToText() << "\n";
  if (dump_json) std::cout << exec.plan.ToJson() << "\n\n";
  parjoin::Relation<S> local = exec.result.ToLocal();
  local.Normalize();

  std::string error;
  if (!parjoin::SaveRelationCsv(spec.result_path, local, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << "Result: " << local.size() << " tuples -> "
            << spec.result_path << "\n"
            << parjoin::plan::PredictedVsMeasuredReport(exec.plan) << "\n"
            << "Cost: planning load " << exec.plan.planning_stats.max_load
            << " (" << exec.plan.planning_stats.rounds << " rounds), "
            << "execution load " << exec.plan.execution_stats.max_load
            << " (" << exec.plan.execution_stats.rounds << " rounds), "
            << exec.plan.execution_stats.total_comm
            << " tuples moved (p = " << spec.p << ")\n";
  return 0;
}

int WriteDemoAndRun(bool dump_json) {
  const std::string dir = "/tmp/parjoin_demo";
  (void)system(("mkdir -p " + dir).c_str());
  // A 3-chain: suppliers -> parts -> regions.
  {
    std::ofstream r1(dir + "/supplies.csv");
    for (int s = 0; s < 40; ++s) {
      for (int part = s % 5; part < 20; part += 5) {
        r1 << s << "," << part << ",1\n";
      }
    }
    std::ofstream r2(dir + "/ships_to.csv");
    for (int part = 0; part < 20; ++part) {
      for (int region = part % 3; region < 9; region += 3) {
        r2 << part << "," << region << "," << (1 + part % 4) << "\n";
      }
    }
  }
  {
    std::ofstream spec(dir + "/query.spec");
    spec << "# how many supply routes connect each (supplier, region)?\n"
         << "p 8\n"
         << "edge 0 1 " << dir << "/supplies.csv\n"
         << "edge 1 2 " << dir << "/ships_to.csv\n"
         << "output 0 2\n"
         << "result " << dir << "/routes.csv\n";
  }
  Spec spec;
  std::string error;
  if (!ParseSpec(dir + "/query.spec", &spec, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << "Demo spec written to " << dir << "/query.spec\n\n";
  return RunSpec(spec, dump_json);
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      dump_json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() == 1 && args[0] == "--demo") {
    return WriteDemoAndRun(dump_json);
  }
  if (args.size() != 1) {
    std::cerr << "usage: " << argv[0] << " [--json] <spec-file> | --demo\n";
    return 2;
  }
  Spec spec;
  std::string error;
  if (!ParseSpec(args[0], &spec, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  return RunSpec(spec, dump_json);
}
