// Multi-leg shortest paths as a LINE query over the tropical semiring.
//
// A travel itinerary has three legs: home city -> hub1 -> hub2 ->
// destination, each leg a relation of (from, to) flights annotated with a
// price. Under the min-plus (tropical) semiring,
//   ∑_{hub1, hub2} Leg1 ⋈ Leg2 ⋈ Leg3
// computes, for every (home, destination) pair, the CHEAPEST total price
// over all hub choices — the §4 line-query algorithm does it with the
// Theorem 4 load instead of materializing all itineraries.

#include <algorithm>
#include <set>
#include <iostream>

#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace {

using S = parjoin::MinPlusSemiring;

parjoin::Relation<S> FlightLeg(parjoin::Schema schema, int from_cities,
                               int to_cities, int num_flights,
                               std::uint64_t seed) {
  parjoin::Rng rng(seed);
  parjoin::Relation<S> rel(schema);
  std::set<std::pair<parjoin::Value, parjoin::Value>> seen;
  while (static_cast<int>(seen.size()) < num_flights) {
    parjoin::Value u = rng.Uniform(0, from_cities - 1);
    parjoin::Value v = rng.Uniform(0, to_cities - 1);
    if (!seen.insert({u, v}).second) continue;
    rel.Add(parjoin::Row{u, v}, rng.Uniform(40, 400));  // price
  }
  return rel;
}

}  // namespace

int main() {
  constexpr int kCities = 120;
  constexpr int kHubs = 25;
  constexpr int kFlights = 1200;

  parjoin::mpc::Cluster cluster(16);
  // Attributes: home=0, hub1=1, hub2=2, destination=3.
  parjoin::TreeInstance<S> itinerary{
      parjoin::JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}), {}};
  itinerary.relations.push_back(parjoin::Distribute(
      cluster, FlightLeg(parjoin::Schema{0, 1}, kCities, kHubs, kFlights, 1)));
  itinerary.relations.push_back(parjoin::Distribute(
      cluster, FlightLeg(parjoin::Schema{1, 2}, kHubs, kHubs, kHubs * kHubs / 2,
                         2)));
  itinerary.relations.push_back(parjoin::Distribute(
      cluster, FlightLeg(parjoin::Schema{2, 3}, kHubs, kCities, kFlights, 3)));

  auto cheapest = parjoin::LineQueryAggregate(cluster, itinerary);

  // Show the three cheapest overall connections.
  parjoin::Relation<S> local = cheapest.ToLocal();
  local.Normalize();
  std::partial_sort(
      local.tuples().begin(),
      local.tuples().begin() + std::min<std::size_t>(3, local.tuples().size()),
      local.tuples().end(),
      [](const auto& a, const auto& b) { return a.w < b.w; });
  std::cout << "Cheapest three-leg connections out of " << local.size()
            << " reachable (home, destination) pairs:\n";
  for (int i = 0; i < 3 && i < static_cast<int>(local.size()); ++i) {
    const auto& t = local.tuples()[static_cast<size_t>(i)];
    std::cout << "  " << t.row[0] << " -> " << t.row[1] << " : $" << t.w
              << "\n";
  }
  std::cout << "\nLine-query load: " << cluster.stats().max_load << " in "
            << cluster.stats().rounds << " rounds.\n";

  // The baseline for comparison: distributed Yannakakis on a fresh ledger.
  parjoin::mpc::Cluster baseline(16);
  parjoin::TreeInstance<S> again{
      parjoin::JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}), {}};
  again.relations.push_back(parjoin::Distribute(
      baseline, FlightLeg(parjoin::Schema{0, 1}, kCities, kHubs, kFlights, 1)));
  again.relations.push_back(parjoin::Distribute(
      baseline,
      FlightLeg(parjoin::Schema{1, 2}, kHubs, kHubs, kHubs * kHubs / 2, 2)));
  again.relations.push_back(parjoin::Distribute(
      baseline, FlightLeg(parjoin::Schema{2, 3}, kHubs, kCities, kFlights, 3)));
  parjoin::YannakakisJoinAggregate(baseline, std::move(again));
  std::cout << "Yannakakis baseline load: " << baseline.stats().max_load
            << "\n";
  return 0;
}
