# Runs one example binary and checks BOTH its exit code and its combined
# output — ctest's WILL_FAIL / PASS_REGULAR_EXPRESSION can each check only
# one of the two, and the ingress contract pins both (bad spec -> exit 1
# with the offending line; bad flag -> exit 2 with usage).
#
# Usage:
#   cmake -DCMD=<command line> -DEXPECT_CODE=<n> [-DEXPECT_OUTPUT=<regex>]
#         -P check_run.cmake

if(NOT DEFINED CMD OR NOT DEFINED EXPECT_CODE)
  message(FATAL_ERROR "check_run.cmake needs -DCMD=... and -DEXPECT_CODE=...")
endif()

separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(
  COMMAND ${cmd_list}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
string(APPEND out "${err}")
message("--- command: ${CMD}\n--- exit code: ${code}\n${out}")

if(NOT code EQUAL "${EXPECT_CODE}")
  message(FATAL_ERROR "expected exit code ${EXPECT_CODE}, got '${code}'")
endif()
if(DEFINED EXPECT_OUTPUT AND NOT out MATCHES "${EXPECT_OUTPUT}")
  message(FATAL_ERROR "output does not match '${EXPECT_OUTPUT}'")
endif()
