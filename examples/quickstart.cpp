// Quickstart: sparse matrix multiplication as a join-aggregate query.
//
// Builds two small annotated relations R1(A,B), R2(B,C) over the counting
// semiring (Z, +, *), runs the paper's Theorem 1 algorithm on a simulated
// 8-server MPC cluster, and prints the result next to the cost ledger.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <iostream>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

int main() {
  using S = parjoin::CountingSemiring;
  using parjoin::Relation;
  using parjoin::Row;
  using parjoin::Schema;

  // A 3x3 sparse matrix and a 3x2 sparse matrix, entries as (row, col,
  // value) tuples. Attribute ids: A=0, B=1, C=2.
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{0, 0}, 2);
  r1.Add(Row{0, 1}, 3);
  r1.Add(Row{1, 1}, 5);
  r1.Add(Row{2, 0}, 7);

  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{0, 0}, 1);
  r2.Add(Row{1, 0}, 4);
  r2.Add(Row{1, 1}, 6);

  // A simulated MPC cluster with p = 8 servers. The initial placement
  // spreads each relation evenly (the model's assumption); every later
  // tuple movement is charged to the load ledger.
  parjoin::mpc::Cluster cluster(/*p=*/8);
  auto d1 = parjoin::Distribute(cluster, r1);
  auto d2 = parjoin::Distribute(cluster, r2);

  // ∑_B R1(A,B) ⋈ R2(B,C) — the product matrix, computed with the
  // dispatcher of Theorem 1 (worst-case-optimal or output-sensitive,
  // picked via the §2.2 OUT estimate).
  parjoin::DistRelation<S> product = parjoin::MatMul(cluster, d1, d2);

  Relation<S> local = product.ToLocal();
  local.Normalize();
  std::cout << "C = A x B (nonzero entries):\n";
  for (const auto& t : local.tuples()) {
    std::cout << "  C[" << t.row[0] << "][" << t.row[1] << "] = " << t.w
              << "\n";
  }

  const auto& stats = cluster.stats();
  std::cout << "\nMPC cost ledger:\n"
            << "  rounds      = " << stats.rounds << "\n"
            << "  max load L  = " << stats.max_load
            << " tuples (the paper's cost measure)\n"
            << "  total comm  = " << stats.total_comm << " tuples\n";
  return 0;
}
