# Runs an example binary with --trace-out and then validates the written
# trace with tools/obs/check_trace.py — the CI smoke that pins the
# parjoin-trace-v1 writer against the out-of-tree checker (a schema drift
# in obs::TraceRecorder fails here even if the in-tree parser drifted with
# it).
#
# Usage:
#   cmake -DCMD=<command line> -DTRACE_FILE=<path> -DCHECKER=<check_trace.py>
#         -DPYTHON=<python3> [-DMIN_ROUNDS=<k>] -P check_trace_run.cmake

foreach(var CMD TRACE_FILE CHECKER PYTHON)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_trace_run.cmake needs -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED MIN_ROUNDS)
  set(MIN_ROUNDS 1)
endif()

file(REMOVE "${TRACE_FILE}")
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(
  COMMAND ${cmd_list}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
string(APPEND out "${err}")
message("--- command: ${CMD}\n--- exit code: ${code}\n${out}")
if(NOT code EQUAL 0)
  message(FATAL_ERROR "expected exit code 0, got '${code}'")
endif()
if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "trace file ${TRACE_FILE} was not written")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${TRACE_FILE}" --min-rounds
          "${MIN_ROUNDS}"
  RESULT_VARIABLE check_code
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
string(APPEND check_out "${check_err}")
message("--- check_trace: exit code: ${check_code}\n${check_out}")
if(NOT check_code EQUAL 0)
  message(FATAL_ERROR "trace failed parjoin-trace-v1 validation")
endif()
