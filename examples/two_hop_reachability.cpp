// Two-hop analytics on a social graph — matrix multiplication under two
// semirings, planned and executed by the cost-based planner.
//
// A random "follows" graph is queried twice with the same physical plan:
//   * Boolean semiring  — which pairs (u, w) are connected by a 2-hop
//     path? (join-project / conjunctive query semantics)
//   * Counting semiring — how many distinct 2-hop paths connect them?
//     (COUNT(*) GROUP BY semantics)
// The point of the paper's semiring framework is that these are the same
// query plan; only ⊕/⊗ change. The planner classifies the query as matrix
// multiplication, estimates OUT with the §2.2 sketches, and picks between
// the worst-case and output-sensitive Theorem 1 branches — the example
// prints the chosen algorithm and predicted vs. measured load.

#include <iostream>
#include <set>
#include <utility>

#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/plan/executor.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

namespace {

// Edge list of a random directed graph: num_edges distinct (src, dst).
template <typename S>
parjoin::Relation<S> FollowsRelation(parjoin::Schema schema, int num_users,
                                     int num_edges, std::uint64_t seed) {
  parjoin::Rng rng(seed);
  parjoin::Relation<S> rel(schema);
  std::set<std::pair<parjoin::Value, parjoin::Value>> seen;
  while (static_cast<int>(seen.size()) < num_edges) {
    parjoin::Value u = rng.Uniform(0, num_users - 1);
    parjoin::Value v = rng.Uniform(0, num_users - 1);
    if (u == v || !seen.insert({u, v}).second) continue;
    rel.Add(parjoin::Row{u, v}, S::One());
  }
  return rel;
}

// Attribute ids: source=0, middle=1, target=2. The same edge set is used
// as both hops: R1(src, mid) and R2(mid, dst); output y = {src, target}.
template <typename S>
parjoin::plan::PlanExecution<S> RunTwoHop(parjoin::mpc::Cluster& cluster,
                                          int num_users, int num_edges) {
  parjoin::TreeInstance<S> instance{
      parjoin::JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(parjoin::Distribute(
      cluster,
      FollowsRelation<S>(parjoin::Schema{0, 1}, num_users, num_edges, 1)));
  instance.relations.push_back(parjoin::Distribute(
      cluster,
      FollowsRelation<S>(parjoin::Schema{1, 2}, num_users, num_edges, 1)));
  return parjoin::plan::PlanAndRun(cluster, std::move(instance));
}

}  // namespace

int main() {
  constexpr int kUsers = 400;
  constexpr int kEdges = 3000;

  {
    using S = parjoin::BooleanSemiring;
    parjoin::mpc::Cluster cluster(16);
    auto exec = RunTwoHop<S>(cluster, kUsers, kEdges);
    std::cout << "Boolean semiring: " << exec.result.TotalSize()
              << " user pairs are 2-hop connected ("
              << parjoin::plan::PredictedVsMeasuredReport(exec.plan)
              << ", " << exec.plan.execution_stats.rounds << " rounds)\n";
  }

  {
    using S = parjoin::CountingSemiring;
    parjoin::mpc::Cluster cluster(16);
    auto exec = RunTwoHop<S>(cluster, kUsers, kEdges);

    // The pair connected by the most distinct 2-hop paths.
    parjoin::Value best_u = -1, best_w = -1;
    std::int64_t best = 0;
    exec.result.data.ForEach([&](const parjoin::Tuple<S>& t) {
      if (t.w > best) {
        best = t.w;
        best_u = t.row[0];
        best_w = t.row[1];
      }
    });
    std::cout << "Counting semiring: strongest pair is (" << best_u << ", "
              << best_w << ") with " << best << " distinct 2-hop paths\n";
    std::cout << "\n" << exec.plan.ToText();
  }
  return 0;
}
