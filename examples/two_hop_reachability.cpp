// Two-hop analytics on a social graph — matrix multiplication under two
// semirings.
//
// A random "follows" graph is queried twice with the same algorithm:
//   * Boolean semiring  — which pairs (u, w) are connected by a 2-hop
//     path? (join-project / conjunctive query semantics)
//   * Counting semiring — how many distinct 2-hop paths connect them?
//     (COUNT(*) GROUP BY semantics)
// The point of the paper's semiring framework is that these are the same
// query plan; only ⊕/⊗ change.

#include <algorithm>
#include <set>
#include <iostream>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

namespace {

// Edge list of a random directed graph: num_edges distinct (src, dst).
template <typename S>
parjoin::Relation<S> FollowsRelation(parjoin::Schema schema, int num_users,
                                     int num_edges, std::uint64_t seed) {
  parjoin::Rng rng(seed);
  parjoin::Relation<S> rel(schema);
  std::set<std::pair<parjoin::Value, parjoin::Value>> seen;
  while (static_cast<int>(seen.size()) < num_edges) {
    parjoin::Value u = rng.Uniform(0, num_users - 1);
    parjoin::Value v = rng.Uniform(0, num_users - 1);
    if (u == v || !seen.insert({u, v}).second) continue;
    rel.Add(parjoin::Row{u, v}, S::One());
  }
  return rel;
}

}  // namespace

int main() {
  constexpr int kUsers = 400;
  constexpr int kEdges = 3000;

  // Attribute ids: source=0, middle=1, target=2. The same edge set is
  // used as both hops: R1(src, mid) and R2(mid, dst).
  {
    using S = parjoin::BooleanSemiring;
    parjoin::mpc::Cluster cluster(16);
    auto hop1 = parjoin::Distribute(
        cluster, FollowsRelation<S>(parjoin::Schema{0, 1}, kUsers, kEdges, 1));
    auto hop2 = parjoin::Distribute(
        cluster, FollowsRelation<S>(parjoin::Schema{1, 2}, kUsers, kEdges, 1));
    auto reach = parjoin::MatMul(cluster, hop1, hop2);
    std::cout << "Boolean semiring: " << reach.TotalSize()
              << " user pairs are 2-hop connected"
              << " (load " << cluster.stats().max_load << ", "
              << cluster.stats().rounds << " rounds)\n";
  }

  {
    using S = parjoin::CountingSemiring;
    parjoin::mpc::Cluster cluster(16);
    auto hop1 = parjoin::Distribute(
        cluster, FollowsRelation<S>(parjoin::Schema{0, 1}, kUsers, kEdges, 1));
    auto hop2 = parjoin::Distribute(
        cluster, FollowsRelation<S>(parjoin::Schema{1, 2}, kUsers, kEdges, 1));
    auto counts = parjoin::MatMul(cluster, hop1, hop2);

    // The pair connected by the most distinct 2-hop paths.
    parjoin::Value best_u = -1, best_w = -1;
    std::int64_t best = 0;
    counts.data.ForEach([&](const parjoin::Tuple<S>& t) {
      if (t.w > best) {
        best = t.w;
        best_u = t.row[0];
        best_w = t.row[1];
      }
    });
    std::cout << "Counting semiring: strongest pair is (" << best_u << ", "
              << best_w << ") with " << best << " distinct 2-hop paths\n";
  }
  return 0;
}
