#!/usr/bin/env python3
"""check_bench_schema: validates BENCH_parjoin.json against parjoin-bench-v1.

The perf trajectory file is written line-oriented by bench/bench_util.cc
(UpdateBenchJson) from several independent bench binaries across PRs. A
malformed entry — duplicate (experiment, name), a missing required field,
a wrong type — silently corrupts the trajectory the next time a binary
rewrites its experiment's lines. This checker pins the contract:

  * top level: {"schema": "parjoin-bench-v1", "entries": [...]}
  * every entry is an object with required fields
      experiment (str), name (str, no '"'), n (int >= 0), p (int > 0),
      threads (int >= 1), wall_ms (number >= 0), max_load (int >= 0),
      rounds (int >= 0), total_comm (int >= 0)
  * optional fields critical_path / recovery_comm (int >= 0) — entries
    written before the ledger grew those columns lack them
  * no unknown fields, and (experiment, name) pairs are unique

Exit status 0 when the file validates, 1 otherwise (one message per
problem). `--self-test` runs the checker against embedded good/bad
documents and fails if any misjudged.
"""

import argparse
import json
import sys

SCHEMA = "parjoin-bench-v1"

# field -> (types, min_value); bool is an int subclass in Python, so it is
# rejected explicitly everywhere.
REQUIRED = {
    "experiment": (str, None),
    "name": (str, None),
    "n": (int, 0),
    "p": (int, 1),
    "threads": (int, 1),
    "wall_ms": ((int, float), 0),
    "max_load": (int, 0),
    "rounds": (int, 0),
    "total_comm": (int, 0),
}
OPTIONAL = {
    "critical_path": (int, 0),
    "recovery_comm": (int, 0),
    # Serving-runtime metrics (E7 entries from bench_serving).
    "qps": ((int, float), 0),
    "p50_ms": ((int, float), 0),
    "p99_ms": ((int, float), 0),
    "cache_hit_rate": ((int, float), 0),
    "cold_plan_ms": ((int, float), 0),
    "warm_plan_ms": ((int, float), 0),
    # Planner-calibration metrics (E8 entries from bench_calibration).
    "chosen_unit": (str, None),
    "chosen_calibrated": (str, None),
    "measured_best": (str, None),
    "corrected": (int, 0),
    "calib_factor": ((int, float), 0),
    # Fine-grained-recovery metrics (E9 entries from
    # bench_recovery_granularity).
    "resumes": (int, 0),
    "resumed_rounds": (int, 0),
    "rebalances": (int, 0),
    "rebalance_comm": (int, 0),
    "replans": (int, 0),
}


def check_field(where, field, value, types, minimum, errors):
    if isinstance(value, bool) or not isinstance(value, types):
        errors.append(f"{where}: field '{field}' has type "
                      f"{type(value).__name__}, expected "
                      f"{types if isinstance(types, tuple) else types.__name__}")
        return
    if isinstance(value, str):
        if not value:
            errors.append(f"{where}: field '{field}' is empty")
        if '"' in value:
            errors.append(f"{where}: field '{field}' contains '\"' "
                          "(bench_util performs no escaping)")
    elif minimum is not None and value < minimum:
        errors.append(f"{where}: field '{field}' = {value} < {minimum}")


def validate(doc):
    """Returns a list of error strings; empty means the document is valid."""
    errors = []
    if not isinstance(doc, dict):
        return [f"top level is {type(doc).__name__}, expected object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected '{SCHEMA}'")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        errors.append("'entries' is missing or not an array")
        return errors
    seen = {}
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        for field, (types, minimum) in REQUIRED.items():
            if field not in entry:
                errors.append(f"{where}: missing required field '{field}'")
            else:
                check_field(where, field, entry[field], types, minimum,
                            errors)
        for field, (types, minimum) in OPTIONAL.items():
            if field in entry:
                check_field(where, field, entry[field], types, minimum,
                            errors)
        for field in entry:
            if field not in REQUIRED and field not in OPTIONAL:
                errors.append(f"{where}: unknown field '{field}'")
        rate = entry.get("cache_hit_rate")
        if (isinstance(rate, (int, float)) and not isinstance(rate, bool)
                and rate > 1):
            errors.append(f"{where}: field 'cache_hit_rate' = {rate} > 1")
        corrected = entry.get("corrected")
        if (isinstance(corrected, int) and not isinstance(corrected, bool)
                and corrected > 1):
            errors.append(f"{where}: field 'corrected' = {corrected} > 1")
        key = (entry.get("experiment"), entry.get("name"))
        if None not in key:
            if key in seen:
                errors.append(
                    f"{where}: duplicate (experiment, name) {key} — "
                    f"first at entries[{seen[key]}]")
            else:
                seen[key] = i
    return errors


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    return [f"{path}: {e}" for e in validate(doc)]


# --- self-test ---------------------------------------------------------------

GOOD_ENTRY = {
    "experiment": "E10", "name": "sort/n=8/p=4/threads=1", "n": 8, "p": 4,
    "threads": 1, "wall_ms": 1.5, "max_load": 2, "rounds": 1,
    "total_comm": 8,
}

GOOD_SERVING_ENTRY = dict(
    GOOD_ENTRY, experiment="E7", name="serving/mixed/fifo/q=60/p=16",
    qps=120.5, p50_ms=3.25, p99_ms=9.75, cache_hit_rate=0.95,
    cold_plan_ms=4.0, warm_plan_ms=0.002,
)

GOOD_RECOVERY_ENTRY = dict(
    GOOD_ENTRY, experiment="E9", name="recovery/line/crash=5/interval=2",
    critical_path=40, recovery_comm=24, resumes=1, resumed_rounds=4,
    rebalances=0, rebalance_comm=0, replans=0,
)

GOOD_CALIBRATION_ENTRY = dict(
    GOOD_ENTRY, experiment="E8", name="calibration/out=16384/p=16",
    chosen_unit="matmul_worst_case",
    chosen_calibrated="matmul_output_sensitive",
    measured_best="matmul_output_sensitive", corrected=1,
    calib_factor=2.417,
)

SELF_TEST_CASES = [
    # (description, document, should_pass)
    ("minimal valid", {"schema": SCHEMA, "entries": [GOOD_ENTRY]}, True),
    ("optional ledger columns",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_ENTRY, critical_path=3, recovery_comm=0)]},
     True),
    ("E7 serving entry",
     {"schema": SCHEMA, "entries": [GOOD_SERVING_ENTRY]}, True),
    ("serving metrics negative",
     {"schema": SCHEMA, "entries": [dict(GOOD_SERVING_ENTRY, qps=-1)]},
     False),
    ("cache hit rate above one",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_SERVING_ENTRY, cache_hit_rate=1.5)]},
     False),
    ("serving metric wrong type",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_SERVING_ENTRY, p99_ms="9.75")]},
     False),
    ("E8 calibration entry",
     {"schema": SCHEMA, "entries": [GOOD_CALIBRATION_ENTRY]}, True),
    ("corrected above one",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_CALIBRATION_ENTRY, corrected=2)]},
     False),
    ("corrected bool masquerading as int",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_CALIBRATION_ENTRY, corrected=True)]},
     False),
    ("calibration algorithm wrong type",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_CALIBRATION_ENTRY, chosen_unit=3)]},
     False),
    ("negative calibration factor",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_CALIBRATION_ENTRY, calib_factor=-0.5)]},
     False),
    ("E9 recovery entry",
     {"schema": SCHEMA, "entries": [GOOD_RECOVERY_ENTRY]}, True),
    ("negative resumed rounds",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_RECOVERY_ENTRY, resumed_rounds=-1)]},
     False),
    ("rebalance comm wrong type",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_RECOVERY_ENTRY, rebalance_comm=1.5)]},
     False),
    ("resumes bool masquerading as int",
     {"schema": SCHEMA,
      "entries": [dict(GOOD_RECOVERY_ENTRY, resumes=True)]},
     False),
    ("empty entries", {"schema": SCHEMA, "entries": []}, True),
    ("wrong schema", {"schema": "v0", "entries": []}, False),
    ("entries not a list", {"schema": SCHEMA, "entries": {}}, False),
    ("missing required field",
     {"schema": SCHEMA,
      "entries": [{k: v for k, v in GOOD_ENTRY.items() if k != "rounds"}]},
     False),
    ("wrong type",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, max_load="2")]},
     False),
    ("bool masquerading as int",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, rounds=True)]},
     False),
    ("negative value",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, total_comm=-1)]},
     False),
    ("zero servers",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, p=0)]}, False),
    ("quote in name",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, name='a"b')]}, False),
    ("unknown field",
     {"schema": SCHEMA, "entries": [dict(GOOD_ENTRY, surprise=1)]}, False),
    ("duplicate experiment/name",
     {"schema": SCHEMA, "entries": [GOOD_ENTRY, dict(GOOD_ENTRY)]}, False),
]


def self_test():
    failures = 0
    for description, doc, should_pass in SELF_TEST_CASES:
        errors = validate(doc)
        passed = not errors
        if passed != should_pass:
            failures += 1
            verdict = "accepted" if passed else "rejected"
            print(f"self-test FAILED: '{description}' was {verdict}")
            for e in errors:
                print(f"  {e}")
    if failures:
        print(f"self-test: {failures} case(s) misjudged")
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default="BENCH_parjoin.json",
                        help="trajectory file to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the checker against embedded cases")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = check_file(args.path)
    for e in errors:
        print(e)
    if errors:
        return 1
    print(f"{args.path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
