#!/usr/bin/env python3
"""check_trace: validates a parjoin-trace-v1 JSONL round trace.

Traces are written by obs::TraceRecorder (src/parjoin/obs/trace.cc) from
`query_runner --trace-out` / `parjoind --trace-out`. The schema is the
contract between the C++ writer, the parser (obs::ParseTraceJsonl), and
any downstream analysis; this checker pins it from the outside so a
writer regression fails CI even when the in-tree parser drifts with it:

  * line 1 is the meta object: {"type": "meta",
    "schema": "parjoin-trace-v1", "label": <str>, <str annotations>...}
  * every other line is a round or an event object:
      round: seq (int >= 0), round (int >= 0), scope (str),
             max_load (int >= 0), tuples (int >= 0), recovery (bool),
             straggle (number >= 1), resumed (bool), wall_ms (number >= 0)
      event: seq (int >= 0), kind (non-empty str), round (int >= 0),
             detail (str), wall_ms (number >= 0), plus the optional
             structured payload: server (int >= 0), factor (number >= 1),
             moved (int >= 0)
  * payload fields are required per kind: "straggler" events must carry
    server and factor; "rebalance" events must carry server, factor and
    moved; "resume" events must carry moved
  * no unknown fields on round/event lines
  * `seq` values are exactly 0..N-1 in file order (rounds and events
    share one emission order), and `wall_ms` never decreases with seq

Exit status 0 when the file validates, 1 otherwise (one message per
problem). `--min-rounds K` additionally requires at least K round lines
(CI smoke: an executed query must have charged rounds). `--self-test`
runs the checker against embedded good/bad documents.
"""

import argparse
import json
import sys

SCHEMA = "parjoin-trace-v1"

ROUND_FIELDS = {
    "type": (str, None),
    "seq": (int, 0),
    "round": (int, 0),
    "scope": (str, None),
    "max_load": (int, 0),
    "tuples": (int, 0),
    "recovery": (bool, None),
    "straggle": ((int, float), 1),
    "resumed": (bool, None),
    "wall_ms": ((int, float), 0),
}
EVENT_FIELDS = {
    "type": (str, None),
    "seq": (int, 0),
    "kind": (str, None),
    "round": (int, 0),
    "detail": (str, None),
    "wall_ms": ((int, float), 0),
}
# Structured event payload: optional in general, but required per kind
# (EVENT_KIND_PAYLOAD). `factor` is an injected straggle delay, >= 1 by
# construction (mpc/faults.h draws from [straggle_min, straggle_max]).
OPTIONAL_EVENT_FIELDS = {
    "server": (int, 0),
    "factor": ((int, float), 1),
    "moved": (int, 0),
}
EVENT_KIND_PAYLOAD = {
    "straggler": ("server", "factor"),
    "rebalance": ("server", "factor", "moved"),
    "resume": ("moved",),
}
# Fields where the empty string is legal ("scope": top-level round,
# "detail": event without elaboration).
EMPTY_OK = {"scope", "detail", "label"}


def check_field(where, field, value, types, minimum, errors):
    if types is not bool and isinstance(value, bool):
        errors.append(f"{where}: field '{field}' is a bool, expected "
                      f"{types if isinstance(types, tuple) else types.__name__}")
        return
    if not isinstance(value, types):
        errors.append(f"{where}: field '{field}' has type "
                      f"{type(value).__name__}, expected "
                      f"{types if isinstance(types, tuple) else types.__name__}")
        return
    if isinstance(value, str):
        if not value and field not in EMPTY_OK:
            errors.append(f"{where}: field '{field}' is empty")
    elif minimum is not None and value < minimum:
        errors.append(f"{where}: field '{field}' = {value} < {minimum}")


def check_record(where, record, fields, errors, optional=None):
    optional = optional or {}
    for field, (types, minimum) in fields.items():
        if field not in record:
            errors.append(f"{where}: missing field '{field}'")
        else:
            check_field(where, field, record[field], types, minimum, errors)
    for field, (types, minimum) in optional.items():
        if field in record:
            check_field(where, field, record[field], types, minimum, errors)
    for field in record:
        if field not in fields and field not in optional:
            errors.append(f"{where}: unknown field '{field}'")


def check_event_payload(where, record, errors):
    """Kind-dependent payload requirements (see EVENT_KIND_PAYLOAD)."""
    kind = record.get("kind")
    for field in EVENT_KIND_PAYLOAD.get(kind, ()):
        if field not in record:
            errors.append(f"{where}: '{kind}' event missing payload "
                          f"field '{field}'")


def validate(lines, min_rounds=0):
    """Validates parsed JSONL objects (index 0 = file line 1). Returns a
    list of error strings; empty means the trace is valid."""
    errors = []
    if not lines:
        return ["empty trace: line 1 must be the meta object"]
    meta = lines[0]
    if not isinstance(meta, dict) or meta.get("type") != "meta":
        errors.append("line 1: not a meta object")
    else:
        if meta.get("schema") != SCHEMA:
            errors.append(f"line 1: schema is {meta.get('schema')!r}, "
                          f"expected '{SCHEMA}'")
        if not isinstance(meta.get("label"), str):
            errors.append("line 1: 'label' is missing or not a string")
        for key, value in meta.items():
            if not isinstance(value, str):
                errors.append(f"line 1: annotation '{key}' is "
                              f"{type(value).__name__}, expected string")

    rounds = 0
    prev_wall = None
    for i, record in enumerate(lines[1:], start=2):
        where = f"line {i}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        kind = record.get("type")
        if kind == "round":
            check_record(where, record, ROUND_FIELDS, errors)
            rounds += 1
        elif kind == "event":
            check_record(where, record, EVENT_FIELDS, errors,
                         optional=OPTIONAL_EVENT_FIELDS)
            check_event_payload(where, record, errors)
        elif kind == "meta":
            errors.append(f"{where}: duplicate meta object")
            continue
        else:
            errors.append(f"{where}: unknown type {kind!r}")
            continue
        seq = record.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq != i - 2:
                errors.append(f"{where}: seq {seq}, expected {i - 2} "
                              "(seq must be 0..N-1 in file order)")
        wall = record.get("wall_ms")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            if prev_wall is not None and wall < prev_wall:
                errors.append(f"{where}: wall_ms {wall} < previous "
                              f"{prev_wall} (time cannot run backwards)")
            prev_wall = wall
    if rounds < min_rounds:
        errors.append(f"{rounds} round line(s), expected >= {min_rounds}")
    return errors


def check_file(path, min_rounds=0):
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [f"{path}: {e}"]
    lines = []
    errors = []
    for i, text in enumerate(raw, start=1):
        try:
            lines.append(json.loads(text))
        except json.JSONDecodeError as e:
            return [f"{path}: line {i}: not JSON: {e}"]
    errors.extend(f"{path}: {e}" for e in validate(lines, min_rounds))
    return errors


# --- self-test ---------------------------------------------------------------

GOOD_META = {"type": "meta", "schema": SCHEMA, "label": "demo", "p": "8"}
GOOD_ROUND = {
    "type": "round", "seq": 0, "round": 1, "scope": "sort/exchange",
    "max_load": 128, "tuples": 1024, "recovery": False, "straggle": 1,
    "resumed": False, "wall_ms": 0.25,
}
GOOD_EVENT = {
    "type": "event", "seq": 1, "kind": "checkpoint", "round": 1,
    "detail": "", "wall_ms": 0.5,
}
GOOD_STRAGGLER = {
    "type": "event", "seq": 1, "kind": "straggler", "round": 2,
    "detail": "server 1 delayed x4", "server": 1, "factor": 4.0,
    "wall_ms": 0.5,
}
GOOD_REBALANCE = {
    "type": "event", "seq": 1, "kind": "rebalance", "round": 3,
    "detail": "shipped 96 tuple(s) off server 1", "server": 1,
    "factor": 4.0, "moved": 96, "wall_ms": 0.5,
}
GOOD_RESUME = {
    "type": "event", "seq": 1, "kind": "resume", "round": 0,
    "detail": "fast-forwarding 2 checkpointed round(s)", "moved": 2,
    "wall_ms": 0.5,
}

SELF_TEST_CASES = [
    # (description, lines, min_rounds, should_pass)
    ("meta only", [GOOD_META], 0, True),
    ("round and event", [GOOD_META, GOOD_ROUND, GOOD_EVENT], 1, True),
    ("empty trace", [], 0, False),
    ("missing meta", [GOOD_ROUND], 0, False),
    ("wrong schema", [dict(GOOD_META, schema="v0")], 0, False),
    ("non-string annotation", [dict(GOOD_META, p=8)], 0, False),
    ("duplicate meta", [GOOD_META, GOOD_META], 0, False),
    ("unknown type", [GOOD_META, dict(GOOD_ROUND, type="r")], 0, False),
    ("unknown field",
     [GOOD_META, dict(GOOD_ROUND, surprise=1)], 0, False),
    ("missing field",
     [GOOD_META, {k: v for k, v in GOOD_ROUND.items() if k != "tuples"}],
     0, False),
    ("negative load",
     [GOOD_META, dict(GOOD_ROUND, max_load=-1)], 0, False),
    ("straggle below one",
     [GOOD_META, dict(GOOD_ROUND, straggle=0.5)], 0, False),
    ("recovery not bool",
     [GOOD_META, dict(GOOD_ROUND, recovery=0)], 0, False),
    ("empty event kind",
     [GOOD_META, dict(GOOD_EVENT, seq=0, kind="")], 0, False),
    ("seq out of order",
     [GOOD_META, dict(GOOD_ROUND, seq=1), dict(GOOD_EVENT, seq=0)],
     0, False),
    ("wall time backwards",
     [GOOD_META, dict(GOOD_ROUND, wall_ms=2.0),
      dict(GOOD_EVENT, wall_ms=1.0)], 0, False),
    ("too few rounds", [GOOD_META], 1, False),
    ("resumed round", [GOOD_META, dict(GOOD_ROUND, resumed=True)], 0, True),
    ("resumed missing",
     [GOOD_META, {k: v for k, v in GOOD_ROUND.items() if k != "resumed"}],
     0, False),
    ("resumed not bool",
     [GOOD_META, dict(GOOD_ROUND, resumed=1)], 0, False),
    ("straggler with payload",
     [GOOD_META, GOOD_ROUND, GOOD_STRAGGLER], 0, True),
    ("straggler missing server",
     [GOOD_META, GOOD_ROUND, {k: v for k, v in GOOD_STRAGGLER.items()
                              if k != "server"}], 0, False),
    ("straggler missing factor",
     [GOOD_META, GOOD_ROUND, {k: v for k, v in GOOD_STRAGGLER.items()
                              if k != "factor"}], 0, False),
    ("straggler factor below one",
     [GOOD_META, GOOD_ROUND, dict(GOOD_STRAGGLER, factor=0.5)],
     0, False),
    ("rebalance with payload",
     [GOOD_META, GOOD_ROUND, GOOD_REBALANCE], 0, True),
    ("rebalance missing moved",
     [GOOD_META, GOOD_ROUND, {k: v for k, v in GOOD_REBALANCE.items()
                              if k != "moved"}], 0, False),
    ("rebalance negative moved",
     [GOOD_META, GOOD_ROUND, dict(GOOD_REBALANCE, moved=-1)],
     0, False),
    ("rebalance server not int",
     [GOOD_META, GOOD_ROUND, dict(GOOD_REBALANCE, server="1")],
     0, False),
    ("resume with payload",
     [GOOD_META, GOOD_ROUND, GOOD_RESUME], 0, True),
    ("resume missing moved",
     [GOOD_META, GOOD_ROUND,
      {k: v for k, v in GOOD_RESUME.items() if k != "moved"}], 0, False),
    ("payload on plain event is allowed",
     [GOOD_META, GOOD_ROUND, dict(GOOD_EVENT, server=0)], 0, True),
]


def self_test():
    failures = 0
    for description, lines, min_rounds, should_pass in SELF_TEST_CASES:
        errors = validate(lines, min_rounds)
        passed = not errors
        if passed != should_pass:
            failures += 1
            verdict = "accepted" if passed else "rejected"
            print(f"self-test FAILED: '{description}' was {verdict}")
            for e in errors:
                print(f"  {e}")
    if failures:
        print(f"self-test: {failures} case(s) misjudged")
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", help="trace file to validate")
    parser.add_argument("--min-rounds", type=int, default=0,
                        help="require at least this many round lines")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the checker against embedded cases")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.path is None:
        parser.error("a trace file path is required (or --self-test)")
    errors = check_file(args.path, args.min_rounds)
    for e in errors:
        print(e)
    if errors:
        return 1
    print(f"{args.path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
