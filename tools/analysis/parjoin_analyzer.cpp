// parjoin_analyzer: AST-level determinism & ledger-discipline checker.
//
// A clang libTooling binary driven by compile_commands.json. It enforces,
// at the AST level (seeing through typedefs, using-aliases, and template
// instantiations), the project invariants that tools/lint/parjoin_lint.py
// can only approximate with regexes:
//
//   determinism-unordered-iteration
//       Loops over std::unordered_{map,set,multimap,multiset} whose body
//       mutates state declared outside the loop tie emission order,
//       virtual-server allocation, dense id assignment, or floating-point
//       folds to hash-table iteration order. Such loops must materialize
//       a sorted view (common/sorted_view.h, the one allowlisted home) or
//       carry a `// parjoin-analyzer: order-independent(<reason>)` pragma
//       on the loop line or the line above.
//   checked-count-arith
//       In algorithms/ and mpc/, raw integer `*` where both operands
//       derive from tuple counts (.size()/.TotalSize()/count-named
//       values, one initializer hop deep) must route through CheckedMul/
//       SaturatingMul (common/checked_math.h). Signed `+` on two direct
//       count calls is likewise flagged, except inside ceil-division and
//       reserve() idioms.
//   charged-exchange
//       In algorithms/, `.part(i)` access on a Dist inside a ParallelFor
//       lambda must address the lambda's own index (the argument must
//       reference the lambda parameter or a loop variable declared inside
//       the lambda). Anything else is an uncharged cross-part touch; use
//       Exchange/ExchangeMulti.
//   parallelfor-shared-state
//       Namespace-scope / static / member state mutated inside a
//       ParallelFor lambda must be std::atomic or GUARDED_BY-annotated
//       (complements -Wthread-safety, which only checks annotated state).
//   wallclock-and-rng
//       time/rand/srand/clock/gettimeofday, std::random_device,
//       std::mt19937*, and the std::chrono clocks are contained to
//       common/stopwatch.h, common/random.h, and obs/ — matched on
//       canonical types and callee decls, so `using` aliases are seen.
//
// Findings print as `file:line:col: warning: [check] message` and are
// deduplicated across template instantiations and translation units.
// Exit status: 0 clean, 1 findings, 2 tool error.
//
// Suppression grammar (same line or the line above the finding):
//   // parjoin-analyzer: order-independent(<reason>)   (check 1 only)
//   // parjoin-analyzer: allow(<check-id>): <reason>   (any check)

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/Regex.h"
#include "llvm/Support/raw_ostream.h"

namespace {

using clang::dyn_cast;
using clang::isa;

llvm::cl::OptionCategory gCategory("parjoin_analyzer options");
llvm::cl::opt<std::string> gOnlyCheck(
    "check", llvm::cl::desc("run only the named check"), llvm::cl::init(""),
    llvm::cl::cat(gCategory));
llvm::cl::opt<bool> gListChecks(
    "list-checks", llvm::cl::desc("print check ids and exit"),
    llvm::cl::init(false), llvm::cl::cat(gCategory));

const char* const kCheckNames[] = {
    "determinism-unordered-iteration", "checked-count-arith",
    "charged-exchange", "parallelfor-shared-state", "wallclock-and-rng",
};

// Findings deduplicated across TUs/instantiations by (file, line, check).
std::set<std::string> gReported;
int gFindingCount = 0;

bool CheckEnabled(llvm::StringRef check) {
  return gOnlyCheck.empty() || gOnlyCheck == check;
}

bool PathContains(llvm::StringRef path, llvm::StringRef needle) {
  return path.find(needle) != llvm::StringRef::npos;
}

bool StartsWith(llvm::StringRef s, llvm::StringRef prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

// Identifier spelling of a decl, "" for operators/conversions/etc.
// (NamedDecl::getName() asserts on non-identifier names.)
llvm::StringRef IdentNameOf(const clang::NamedDecl* d) {
  if (d == nullptr) return llvm::StringRef();
  const clang::IdentifierInfo* ii = d->getIdentifier();
  return ii != nullptr ? ii->getName() : llvm::StringRef();
}

// --- suppression pragmas -----------------------------------------------------

std::string LineAt(const clang::SourceManager& sm, clang::FileID fid,
                   unsigned line) {
  if (line == 0) return "";
  bool invalid = false;
  llvm::StringRef buf = sm.getBufferData(fid, &invalid);
  if (invalid) return "";
  clang::SourceLocation start = sm.translateLineCol(fid, line, 1);
  if (start.isInvalid()) return "";
  unsigned off = sm.getFileOffset(sm.getSpellingLoc(start));
  if (off >= buf.size()) return "";
  size_t end = buf.find('\n', off);
  return buf.substr(off, end == llvm::StringRef::npos ? end : end - off)
      .str();
}

bool Suppressed(const clang::SourceManager& sm,
                clang::SourceLocation spelling, llvm::StringRef check) {
  clang::FileID fid = sm.getFileID(spelling);
  unsigned line = sm.getSpellingLineNumber(spelling);
  for (unsigned l : {line, line > 1 ? line - 1 : line}) {
    std::string text = LineAt(sm, fid, l);
    size_t tag = text.find("parjoin-analyzer:");
    if (tag == std::string::npos) continue;
    llvm::StringRef rest = llvm::StringRef(text).substr(tag);
    if (check == "determinism-unordered-iteration" &&
        PathContains(rest, "order-independent(")) {
      return true;
    }
    if (PathContains(rest, "allow(" + check.str())) return true;
  }
  return false;
}

// --- shared helpers ----------------------------------------------------------

// Canonical (desugared) name of the record behind a type, "" if none.
std::string RecordNameOf(clang::QualType qt) {
  if (qt.isNull()) return "";
  clang::QualType canon =
      qt.getNonReferenceType().getCanonicalType().getUnqualifiedType();
  const clang::CXXRecordDecl* rd = canon->getAsCXXRecordDecl();
  if (rd == nullptr) return "";
  return rd->getQualifiedNameAsString();
}

bool IsUnorderedContainer(clang::QualType qt) {
  const std::string name = RecordNameOf(qt);
  return name == "std::unordered_map" || name == "std::unordered_set" ||
         name == "std::unordered_multimap" ||
         name == "std::unordered_multiset";
}

// Root declaration of an lvalue chain: strips member access, subscripts,
// operator[]/at() chains down to the base decl. A member reached through
// `this` roots at the FieldDecl itself.
const clang::ValueDecl* RootDeclOf(const clang::Expr* e) {
  while (e != nullptr) {
    e = e->IgnoreParenImpCasts();
    if (const auto* dre = dyn_cast<clang::DeclRefExpr>(e)) {
      return dre->getDecl();
    }
    if (const auto* me = dyn_cast<clang::MemberExpr>(e)) {
      if (isa<clang::CXXThisExpr>(me->getBase()->IgnoreParenImpCasts())) {
        return me->getMemberDecl();
      }
      e = me->getBase();
    } else if (const auto* ase = dyn_cast<clang::ArraySubscriptExpr>(e)) {
      e = ase->getBase();
    } else if (const auto* oce = dyn_cast<clang::CXXOperatorCallExpr>(e)) {
      if (oce->getNumArgs() == 0) return nullptr;
      e = oce->getArg(0);
    } else if (const auto* mce = dyn_cast<clang::CXXMemberCallExpr>(e)) {
      e = mce->getImplicitObjectArgument();
    } else if (const auto* uo = dyn_cast<clang::UnaryOperator>(e)) {
      e = uo->getSubExpr();
    } else {
      return nullptr;
    }
  }
  return nullptr;
}

// Collects every Decl declared inside a statement subtree (loop variables,
// body locals, structured bindings, lambda parameters).
class LocalDeclCollector
    : public clang::RecursiveASTVisitor<LocalDeclCollector> {
 public:
  std::set<const clang::Decl*> decls;
  bool shouldVisitImplicitCode() const { return true; }
  bool VisitDecl(clang::Decl* d) {
    decls.insert(d->getCanonicalDecl());
    return true;
  }
};

std::set<const clang::Decl*> DeclsIn(clang::Stmt* s) {
  LocalDeclCollector c;
  if (s != nullptr) c.TraverseStmt(s);
  return c.decls;
}

// True when the subtree references any decl in `targets`.
class RefFinder : public clang::RecursiveASTVisitor<RefFinder> {
 public:
  explicit RefFinder(const std::set<const clang::Decl*>& targets)
      : targets_(targets) {}
  bool found = false;
  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    if (targets_.count(dre->getDecl()->getCanonicalDecl()) > 0) {
      found = true;
      return false;
    }
    return true;
  }

 private:
  const std::set<const clang::Decl*>& targets_;
};

bool ReferencesAny(clang::Stmt* s,
                   const std::set<const clang::Decl*>& targets) {
  if (s == nullptr) return false;
  RefFinder f(targets);
  f.TraverseStmt(s);
  return f.found;
}

// Finds a `.begin()`/`.cbegin()` call on an unordered container anywhere
// in a subtree (iterator-style loop inits).
class BeginFinder : public clang::RecursiveASTVisitor<BeginFinder> {
 public:
  bool found = false;
  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const llvm::StringRef name = IdentNameOf(call->getMethodDecl());
    if ((name == "begin" || name == "cbegin") &&
        IsUnorderedContainer(
            call->getImplicitObjectArgument()->getType())) {
      found = true;
      return false;
    }
    return true;
  }
};

// First mutation in a subtree whose target roots outside `locals`.
class MutFinder : public clang::RecursiveASTVisitor<MutFinder> {
 public:
  explicit MutFinder(const std::set<const clang::Decl*>& locals)
      : locals_(locals) {}
  const clang::ValueDecl* target = nullptr;

  bool Consider(const clang::Expr* base) {
    const clang::ValueDecl* d = RootDeclOf(base);
    if (d == nullptr) return true;
    if (locals_.count(d->getCanonicalDecl()) > 0) return true;
    target = d;
    return false;  // stop traversal
  }
  bool VisitBinaryOperator(clang::BinaryOperator* bo) {
    if (bo->isAssignmentOp()) return Consider(bo->getLHS());
    return true;
  }
  bool VisitUnaryOperator(clang::UnaryOperator* uo) {
    if (uo->isIncrementDecrementOp()) return Consider(uo->getSubExpr());
    return true;
  }
  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* oce) {
    const clang::OverloadedOperatorKind op = oce->getOperator();
    if ((op >= clang::OO_PlusEqual && op <= clang::OO_PipeEqual) ||
        op == clang::OO_Equal || op == clang::OO_PlusPlus ||
        op == clang::OO_MinusMinus) {
      if (oce->getNumArgs() > 0) return Consider(oce->getArg(0));
    }
    return true;
  }
  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const llvm::StringRef name = IdentNameOf(call->getMethodDecl());
    static const char* const kMutators[] = {
        "push_back", "emplace_back", "emplace", "insert", "erase",
        "clear",     "resize",       "assign",  "append", "pop_back",
        "merge",
    };
    for (const char* mut : kMutators) {
      if (name == mut) return Consider(call->getImplicitObjectArgument());
    }
    return true;
  }

 private:
  const std::set<const clang::Decl*>& locals_;
};

const clang::ValueDecl* FirstNonLocalMutation(
    clang::Stmt* body, const std::set<const clang::Decl*>& locals) {
  MutFinder mf(locals);
  if (body != nullptr) mf.TraverseStmt(body);
  return mf.target;
}

// First mutation of namespace-scope/static/member state that is neither
// atomic nor GUARDED_BY-annotated (check 4).
class SharedMutFinder : public clang::RecursiveASTVisitor<SharedMutFinder> {
 public:
  explicit SharedMutFinder(const std::set<const clang::Decl*>& locals)
      : locals_(locals) {}
  const clang::ValueDecl* target = nullptr;

  static bool IsSharedDecl(const clang::ValueDecl* d) {
    if (d == nullptr) return false;
    if (isa<clang::FieldDecl>(d)) return true;
    if (const auto* vd = dyn_cast<clang::VarDecl>(d)) {
      return vd->hasGlobalStorage();
    }
    return false;
  }
  static bool IsExempt(const clang::ValueDecl* d) {
    if (d->hasAttr<clang::GuardedByAttr>()) return true;
    const std::string type = RecordNameOf(d->getType());
    return StartsWith(type, "std::atomic") ||
           StartsWith(type, "std::mutex") || PathContains(type, "Mutex");
  }
  bool Consider(const clang::Expr* base) {
    const clang::ValueDecl* d = RootDeclOf(base);
    if (!IsSharedDecl(d)) return true;
    if (locals_.count(d->getCanonicalDecl()) > 0) return true;
    if (IsExempt(d)) return true;
    target = d;
    return false;
  }
  bool VisitBinaryOperator(clang::BinaryOperator* bo) {
    if (bo->isAssignmentOp()) return Consider(bo->getLHS());
    return true;
  }
  bool VisitUnaryOperator(clang::UnaryOperator* uo) {
    if (uo->isIncrementDecrementOp()) return Consider(uo->getSubExpr());
    return true;
  }
  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* oce) {
    const clang::OverloadedOperatorKind op = oce->getOperator();
    if ((op >= clang::OO_PlusEqual && op <= clang::OO_PipeEqual) ||
        op == clang::OO_Equal || op == clang::OO_PlusPlus ||
        op == clang::OO_MinusMinus) {
      if (oce->getNumArgs() > 0) return Consider(oce->getArg(0));
    }
    return true;
  }
  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const clang::CXXMethodDecl* m = call->getMethodDecl();
    if (m == nullptr || m->isConst()) return true;
    // Non-const member call directly on shared state is a mutation;
    // atomics/mutexes are exempted by their declared type above.
    return Consider(call->getImplicitObjectArgument());
  }

 private:
  const std::set<const clang::Decl*>& locals_;
};

const clang::ValueDecl* FirstSharedMutation(
    clang::Stmt* body, const std::set<const clang::Decl*>& locals) {
  SharedMutFinder smf(locals);
  if (body != nullptr) smf.TraverseStmt(body);
  return smf.target;
}

// --- main visitor ------------------------------------------------------------

class Analyzer : public clang::RecursiveASTVisitor<Analyzer> {
 public:
  explicit Analyzer(clang::ASTContext& ctx) : ctx_(ctx) {}

  bool shouldVisitTemplateInstantiations() const { return true; }

  void Report(clang::SourceLocation loc, llvm::StringRef check,
              const std::string& message) {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    clang::SourceLocation spelling = sm.getSpellingLoc(loc);
    if (spelling.isInvalid()) return;
    if (Suppressed(sm, spelling, check)) return;
    llvm::StringRef file = sm.getFilename(spelling);
    unsigned line = sm.getSpellingLineNumber(spelling);
    unsigned col = sm.getSpellingColumnNumber(spelling);
    std::string key =
        file.str() + ":" + std::to_string(line) + ":" + check.str();
    if (!gReported.insert(key).second) return;
    ++gFindingCount;
    llvm::outs() << file << ":" << line << ":" << col << ": warning: ["
                 << check << "] " << message << "\n";
  }

  // Path of the file a location spells into; "" for system/third-party.
  std::string FileOf(clang::SourceLocation loc) {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    clang::SourceLocation spelling = sm.getSpellingLoc(loc);
    if (spelling.isInvalid()) return "";
    llvm::StringRef file = sm.getFilename(spelling);
    if (file.empty() || StartsWith(file, "/usr/") ||
        PathContains(file, "/_deps/")) {
      return "";
    }
    return file.str();
  }

  // -- check 1: determinism-unordered-iteration -------------------------------

  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* loop) {
    if (!CheckEnabled("determinism-unordered-iteration")) return true;
    const std::string file = FileOf(loop->getForLoc());
    if (file.empty() || !PathContains(file, "src/")) return true;
    if (PathContains(file, "common/sorted_view.h")) return true;
    const clang::Expr* range = loop->getRangeInit();
    if (range == nullptr ||
        !IsUnorderedContainer(range->IgnoreParenImpCasts()->getType())) {
      return true;
    }
    ReportOrderDependentLoop(loop->getForLoc(), loop, loop->getBody(),
                             "iteration");
    return true;
  }

  bool VisitForStmt(clang::ForStmt* loop) {
    if (!CheckEnabled("determinism-unordered-iteration")) return true;
    const std::string file = FileOf(loop->getForLoc());
    if (file.empty() || !PathContains(file, "src/")) return true;
    if (PathContains(file, "common/sorted_view.h")) return true;
    if (loop->getInit() == nullptr) return true;
    BeginFinder bf;
    bf.TraverseStmt(loop->getInit());
    if (!bf.found) return true;
    ReportOrderDependentLoop(loop->getForLoc(), loop, loop->getBody(),
                             "iterator loop");
    return true;
  }

  void ReportOrderDependentLoop(clang::SourceLocation loc,
                                clang::Stmt* loop, clang::Stmt* body,
                                const char* kind) {
    std::set<const clang::Decl*> locals = DeclsIn(loop);
    const clang::ValueDecl* target = FirstNonLocalMutation(body, locals);
    if (target == nullptr) return;
    Report(loc, "determinism-unordered-iteration",
           std::string(kind) + " over unordered container mutates '" +
               target->getNameAsString() +
               "' declared outside the loop; hash order reaches it. "
               "Materialize SortedEntries/SortedKeys "
               "(common/sorted_view.h) or justify with "
               "`// parjoin-analyzer: order-independent(<reason>)`");
  }

  // -- check 2: checked-count-arith -------------------------------------------

  bool VisitBinaryOperator(clang::BinaryOperator* bo) {
    if (!CheckEnabled("checked-count-arith")) return true;
    const std::string file = FileOf(bo->getOperatorLoc());
    if (file.empty() || (!PathContains(file, "src/parjoin/algorithms/") &&
                         !PathContains(file, "src/parjoin/mpc/"))) {
      return true;
    }
    clang::QualType t = bo->getType();
    if (t.isNull() || !t->isIntegerType()) return true;
    if (bo->getOpcode() == clang::BO_Mul) {
      if (IsCountDerived(bo->getLHS(), 2) &&
          IsCountDerived(bo->getRHS(), 2) && !InExemptArithContext(bo)) {
        Report(bo->getOperatorLoc(), "checked-count-arith",
               "raw integer '*' on two tuple-count-derived values; a "
               "wrapped product corrupts thresholds and routing. Use "
               "CheckedMul/SaturatingMul (common/checked_math.h)");
      }
    } else if (bo->getOpcode() == clang::BO_Add) {
      if (t->isSignedIntegerType() && IsDirectCountCall(bo->getLHS()) &&
          IsDirectCountCall(bo->getRHS()) && !InExemptArithContext(bo)) {
        Report(bo->getOperatorLoc(), "checked-count-arith",
               "raw signed '+' on two tuple-count calls; use CheckedAdd/"
               "SaturatingAdd (common/checked_math.h)");
      }
    }
    return true;
  }

  static const clang::Expr* StripCasts(const clang::Expr* e) {
    while (true) {
      const clang::Expr* next = e->IgnoreParenImpCasts();
      if (const auto* ece = dyn_cast<clang::ExplicitCastExpr>(next)) {
        e = ece->getSubExpr();
        continue;
      }
      if (next == e) return e;
      e = next;
    }
  }

  // True for `.size()` / `.TotalSize()` / `.count()` member-call results.
  static bool IsDirectCountCall(const clang::Expr* e) {
    e = StripCasts(e);
    const auto* call = dyn_cast<clang::CXXMemberCallExpr>(e);
    if (call == nullptr) return false;
    const llvm::StringRef name = IdentNameOf(call->getMethodDecl());
    return name == "size" || name == "TotalSize" || name == "count" ||
           name == "NumTuples";
  }

  class InitCountCallFinder
      : public clang::RecursiveASTVisitor<InitCountCallFinder> {
   public:
    bool found = false;
    bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* c) {
      const llvm::StringRef n = IdentNameOf(c->getMethodDecl());
      if (n == "size" || n == "TotalSize") {
        found = true;
        return false;
      }
      return true;
    }
  };

  // Count provenance: a direct count call; a count-named variable; or (one
  // initializer hop) a variable whose init contains a count call. `depth`
  // bounds recursion into sub-operators.
  bool IsCountDerived(const clang::Expr* e, int depth) {
    if (depth < 0 || e == nullptr) return false;
    e = StripCasts(e);
    if (IsDirectCountCall(e)) return true;
    if (const auto* dre = dyn_cast<clang::DeclRefExpr>(e)) {
      const llvm::StringRef name = IdentNameOf(dre->getDecl());
      static const llvm::Regex kCountName(
          "^(n[0-9]*|n_[a-z0-9_]+|cnt[a-z0-9_]*|count[a-z0-9_]*|"
          "deg[a-z0-9_]*|degree[a-z0-9_]*|out_est[a-z0-9_]*|"
          "total[a-z0-9_]*|num_[a-z0-9_]+|nnz[a-z0-9_]*)$");
      if (!name.empty() && kCountName.match(name)) return true;
      if (const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl())) {
        if (const clang::Expr* init = vd->getInit()) {
          InitCountCallFinder f;
          f.TraverseStmt(
              const_cast<clang::Expr*>(init));
          if (f.found) return true;
        }
      }
      return false;
    }
    if (const auto* sub = dyn_cast<clang::BinaryOperator>(e)) {
      return IsCountDerived(sub->getLHS(), depth - 1) ||
             IsCountDerived(sub->getRHS(), depth - 1);
    }
    return false;
  }

  // Exempt arithmetic that feeds a division (ceil-div idiom), a modulo, a
  // reserve() call, or a Checked*/Saturating* wrapper.
  bool InExemptArithContext(const clang::Stmt* s) {
    clang::DynTypedNodeList parents = ctx_.getParents(*s);
    int hops = 0;
    while (!parents.empty() && hops++ < 8) {
      const clang::DynTypedNode node = parents[0];
      if (const auto* bo = node.get<clang::BinaryOperator>()) {
        if (bo->getOpcode() == clang::BO_Div ||
            bo->getOpcode() == clang::BO_Rem) {
          return true;
        }
      }
      if (const auto* call = node.get<clang::CallExpr>()) {
        const llvm::StringRef name = IdentNameOf(call->getDirectCallee());
        if (name == "reserve" || StartsWith(name, "Checked") ||
            StartsWith(name, "Saturating")) {
          return true;
        }
      }
      parents = ctx_.getParents(node);
    }
    return false;
  }

  // -- checks 3 & 4: ParallelFor lambda discipline ----------------------------

  bool VisitCallExpr(clang::CallExpr* call) {
    if (IdentNameOf(call->getDirectCallee()) != "ParallelFor") return true;
    const clang::LambdaExpr* lambda = nullptr;
    for (unsigned i = 0; i < call->getNumArgs() && lambda == nullptr; ++i) {
      const clang::Expr* arg = call->getArg(i)->IgnoreParenImpCasts();
      if (const auto* le = dyn_cast<clang::LambdaExpr>(arg)) {
        lambda = le;
        break;
      }
      // Lambdas often arrive wrapped in a std::function construction.
      if (const auto* ce = dyn_cast<clang::CXXConstructExpr>(arg)) {
        for (const clang::Expr* ca : ce->arguments()) {
          if (const auto* le2 =
                  dyn_cast<clang::LambdaExpr>(ca->IgnoreParenImpCasts())) {
            lambda = le2;
            break;
          }
        }
      }
    }
    if (lambda == nullptr) return true;
    CheckChargedExchange(lambda);
    CheckSharedState(lambda);
    return true;
  }

  // Finds Dist::part(idx) calls whose index ignores all lambda locals.
  class PartFinder : public clang::RecursiveASTVisitor<PartFinder> {
   public:
    PartFinder(Analyzer& a, const std::set<const clang::Decl*>& locals)
        : analyzer_(a), locals_(locals) {}
    bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
      if (IdentNameOf(call->getMethodDecl()) != "part" ||
          call->getNumArgs() != 1) {
        return true;
      }
      const std::string obj =
          RecordNameOf(call->getImplicitObjectArgument()->getType());
      if (obj.find("Dist") == std::string::npos) return true;
      clang::Expr* idx = call->getArg(0);
      if (idx->isValueDependent() || ReferencesAny(idx, locals_)) {
        return true;
      }
      analyzer_.Report(
          call->getExprLoc(), "charged-exchange",
          "Dist::part() inside a ParallelFor lambda addressed by an "
          "index that does not depend on the lambda's own worker "
          "index; cross-part movement must go through mpc::Exchange/"
          "ExchangeMulti so the load ledger stays exact");
      return true;
    }

   private:
    Analyzer& analyzer_;
    const std::set<const clang::Decl*>& locals_;
  };

  void CheckChargedExchange(const clang::LambdaExpr* lambda) {
    if (!CheckEnabled("charged-exchange")) return;
    const std::string file = FileOf(lambda->getBeginLoc());
    if (file.empty() || !PathContains(file, "src/parjoin/algorithms/")) {
      return;
    }
    std::set<const clang::Decl*> locals = LambdaLocals(lambda);
    PartFinder pf(*this, locals);
    pf.TraverseStmt(LambdaBody(lambda));
  }

  void CheckSharedState(const clang::LambdaExpr* lambda) {
    if (!CheckEnabled("parallelfor-shared-state")) return;
    const std::string file = FileOf(lambda->getBeginLoc());
    if (file.empty() || !PathContains(file, "src/")) return;
    std::set<const clang::Decl*> locals = LambdaLocals(lambda);
    const clang::ValueDecl* target =
        FirstSharedMutation(LambdaBody(lambda), locals);
    if (target == nullptr) return;
    Report(lambda->getBeginLoc(), "parallelfor-shared-state",
           "ParallelFor lambda mutates shared state '" +
               target->getNameAsString() +
               "' (namespace-scope/static/member) that is neither "
               "std::atomic nor GUARDED_BY-annotated");
  }

  static clang::Stmt* LambdaBody(const clang::LambdaExpr* lambda) {
    return const_cast<clang::CompoundStmt*>(
        static_cast<const clang::CompoundStmt*>(lambda->getBody()));
  }

  static std::set<const clang::Decl*> LambdaLocals(
      const clang::LambdaExpr* lambda) {
    std::set<const clang::Decl*> locals = DeclsIn(LambdaBody(lambda));
    for (const clang::ParmVarDecl* p :
         lambda->getCallOperator()->parameters()) {
      locals.insert(p->getCanonicalDecl());
    }
    return locals;
  }

  // -- check 5: wallclock-and-rng ---------------------------------------------

  static bool WallclockAllowed(const std::string& file) {
    return PathContains(file, "common/stopwatch.h") ||
           PathContains(file, "common/random.h") ||
           PathContains(file, "obs/");
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    if (!CheckEnabled("wallclock-and-rng")) return true;
    const auto* fd = dyn_cast<clang::FunctionDecl>(dre->getDecl());
    if (fd == nullptr) return true;
    const std::string qname = fd->getQualifiedNameAsString();
    static const char* const kBannedFns[] = {
        "time",      "rand",      "srand",      "clock", "gettimeofday",
        "std::time", "std::rand", "std::srand", "std::clock",
    };
    bool banned = false;
    for (const char* b : kBannedFns) {
      if (qname == b) banned = true;
    }
    if (StartsWith(qname, "std::chrono::") &&
        qname.find("::now") != std::string::npos) {
      banned = true;
    }
    if (!banned) return true;
    const std::string file = FileOf(dre->getLocation());
    if (file.empty() || !PathContains(file, "src/")) return true;
    if (WallclockAllowed(file)) return true;
    Report(dre->getLocation(), "wallclock-and-rng",
           "call to '" + qname +
               "' outside common/stopwatch.h, common/random.h, obs/; "
               "wall time and ambient randomness must not feed seeds, "
               "charged loads, or program logic");
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* vd) {
    if (!CheckEnabled("wallclock-and-rng")) return true;
    const std::string type = RecordNameOf(vd->getType());
    static const char* const kBannedTypes[] = {
        "std::random_device",
        "std::mersenne_twister_engine",
        "std::linear_congruential_engine",
        "std::subtract_with_carry_engine",
    };
    bool banned = false;
    for (const char* b : kBannedTypes) {
      if (StartsWith(type, b)) banned = true;
    }
    // Stored time points name their clock in the canonical type.
    const std::string canon =
        vd->getType().isNull()
            ? ""
            : vd->getType().getCanonicalType().getAsString();
    if (canon.find("steady_clock") != std::string::npos ||
        canon.find("system_clock") != std::string::npos ||
        canon.find("high_resolution_clock") != std::string::npos) {
      banned = true;
    }
    if (!banned) return true;
    const std::string file = FileOf(vd->getLocation());
    if (file.empty() || !PathContains(file, "src/")) return true;
    if (WallclockAllowed(file)) return true;
    Report(vd->getLocation(), "wallclock-and-rng",
           "declaration of banned time/RNG type '" +
               (type.empty() ? canon : type) +
               "' outside common/stopwatch.h, common/random.h, obs/");
    return true;
  }

 private:
  clang::ASTContext& ctx_;
};

class AnalyzerConsumer : public clang::ASTConsumer {
 public:
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    Analyzer analyzer(ctx);
    analyzer.TraverseDecl(ctx.getTranslationUnitDecl());
  }
};

class AnalyzerAction : public clang::ASTFrontendAction {
 public:
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<AnalyzerConsumer>();
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto parser =
      clang::tooling::CommonOptionsParser::create(argc, argv, gCategory);
  if (!parser) {
    llvm::errs() << llvm::toString(parser.takeError()) << "\n";
    return 2;
  }
  if (gListChecks) {
    for (const char* c : kCheckNames) llvm::outs() << c << "\n";
    return 0;
  }
  if (!gOnlyCheck.empty()) {
    bool known = false;
    for (const char* c : kCheckNames) {
      if (gOnlyCheck == c) known = true;
    }
    if (!known) {
      llvm::errs() << "unknown check: " << gOnlyCheck << "\n";
      return 2;
    }
  }
  clang::tooling::ClangTool tool(parser->getCompilations(),
                                 parser->getSourcePathList());
  const int run_status = tool.run(
      clang::tooling::newFrontendActionFactory<AnalyzerAction>().get());
  if (run_status != 0) return 2;
  if (gFindingCount > 0) {
    llvm::errs() << "parjoin_analyzer: " << gFindingCount << " finding(s)\n";
    return 1;
  }
  llvm::errs() << "parjoin_analyzer: clean\n";
  return 0;
}
