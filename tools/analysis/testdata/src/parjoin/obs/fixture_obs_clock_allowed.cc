// The observability subsystem is an allowlisted home for wall time:
// nothing here must be flagged (negative fixture for wallclock-and-rng).

#include <chrono>

namespace parjoin {

long NowNanos() {
  return static_cast<long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace parjoin
