// Fixtures for checked-count-arith: raw arithmetic on tuple counts in
// algorithm code must route through the checked_math wrappers.

#include <cstdint>
#include <vector>

#include "parjoin_stub.h"

namespace parjoin {

// Violation: raw product of two direct counts.
std::int64_t GridCells(const StubRelation& r, const StubRelation& s) {
  // expect-warning@+1: checked-count-arith
  return r.TotalSize() * s.TotalSize();
}

// Violation: counts reached through named variables (one hop deep —
// `deg_u` by name, `probe_n` through its initializer).
std::int64_t JoinEstimate(const std::vector<int>& build,
                          const std::vector<int>& probe) {
  const std::int64_t deg_u = static_cast<std::int64_t>(build.size());
  const std::int64_t probe_n = static_cast<std::int64_t>(probe.size());
  // expect-warning@+1: checked-count-arith
  return deg_u * probe_n;
}

// Violation: signed sum of two direct counts.
std::int64_t TotalInput(const StubRelation& r, const StubRelation& s) {
  // expect-warning@+1: checked-count-arith
  return r.TotalSize() + s.TotalSize();
}

// Clean: the blessed wrappers.
std::int64_t GridCellsChecked(const StubRelation& r,
                              const StubRelation& s) {
  return CheckedMul(r.TotalSize(), s.TotalSize());
}

// Clean: ceil-division over a count sum is the standard partitioning
// idiom; the Div ancestor exempts it.
std::int64_t Buckets(const StubRelation& r, const StubRelation& s) {
  return (r.TotalSize() + s.TotalSize() - 1) / (s.TotalSize() + 1);
}

// Clean: reserve() capacity arithmetic is never charged.
void ReserveAll(std::vector<int>* out, const std::vector<int>& a,
                const std::vector<int>& b) {
  out->reserve(a.size() + b.size());
}

}  // namespace parjoin
