// Fixtures for determinism-unordered-iteration: loops over unordered
// containers that leak hash order into state visible after the loop.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "parjoin_stub.h"

namespace parjoin {

// Violation: emission order leaks hash order into the output vector.
std::vector<int> EmitValues(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  // expect-warning@+1: determinism-unordered-iteration
  for (const auto& [k, v] : m) {
    out.push_back(k + v);
  }
  return out;
}

// Violation: iterator-style loop folding non-commutatively.
long HashChain(const std::unordered_set<long>& s) {
  long fold = 0;
  // expect-warning@+1: determinism-unordered-iteration
  for (auto it = s.begin(); it != s.end(); ++it) {
    fold = fold * 31 + *it;
  }
  return fold;
}

// Clean: sorted view materialized first; the range is an ordered vector.
std::vector<int> EmitSorted(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : SortedEntries(m)) {
    out.push_back(k + v);
  }
  return out;
}

// Clean: commutative fold, justified by pragma.
long SumValues(const std::unordered_map<int, long>& m) {
  long total = 0;
  // parjoin-analyzer: order-independent(commutative integer sum)
  for (const auto& [k, v] : m) {
    total += v;
  }
  return total;
}

// Clean: read-only loop; no state escapes in iteration order.
bool ContainsNegative(const std::unordered_set<int>& s) {
  for (int v : s) {
    if (v < 0) return true;
  }
  return false;
}

}  // namespace parjoin
