// Fixtures for parallelfor-shared-state: namespace-scope/static/member
// state mutated inside ParallelFor lambdas must be atomic or
// GUARDED_BY-annotated.

#include <atomic>
#include <cstdint>
#include <mutex>

#include "parjoin_stub.h"

namespace parjoin {
namespace {

std::int64_t g_unguarded_total = 0;
std::atomic<std::int64_t> g_atomic_total{0};
std::mutex g_mu;
std::int64_t g_guarded_total GUARDED_BY(g_mu) = 0;

}  // namespace

// Violation: namespace-scope accumulator raced by the workers.
void AccumulateRaced(int p) {
  // expect-warning@+1: parallelfor-shared-state
  ParallelFor(p, [&](int i) { g_unguarded_total += i; });
}

// Violation: member state mutated through the captured `this`.
class Ledger {
 public:
  void Charge(int p) {
    // expect-warning@+1: parallelfor-shared-state
    ParallelFor(p, [&](int i) { total_ += i; });
  }

 private:
  std::int64_t total_ = 0;
};

// Clean: atomic accumulator.
void AccumulateAtomic(int p) {
  ParallelFor(p, [&](int i) { g_atomic_total.fetch_add(i); });
}

// Clean: mutex-guarded state, annotated as such.
void AccumulateGuarded(int p) {
  ParallelFor(p, [&](int i) {
    const std::lock_guard<std::mutex> lock(g_mu);
    g_guarded_total += i;
  });
}

// Clean: only lambda-local state is mutated.
void LocalOnly(int p) {
  ParallelFor(p, [&](int i) {
    std::int64_t local = 0;
    local += i;
    (void)local;
  });
}

}  // namespace parjoin
