// Fixtures for wallclock-and-rng: time and ambient randomness are
// contained to common/stopwatch.h, common/random.h, obs/. The checks
// match canonical types and callee decls, so aliases don't hide them.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

#include "parjoin_stub.h"

namespace parjoin {

// Violation: ambient entropy seeding anything breaks reproducibility.
int SeedFromEntropy() {
  // expect-warning@+1: wallclock-and-rng
  std::random_device rd;
  return static_cast<int>(rd() % 97);
}

// Violation: engine type, even behind an alias.
using Engine = std::mt19937_64;
long DrawBehindAlias() {
  // expect-warning@+1: wallclock-and-rng
  Engine eng(7);
  return static_cast<long>(eng());
}

// Violation: wall clock behind a type alias.
using Clock = std::chrono::steady_clock;
long TimeBehindAlias() {
  // expect-warning@+1: wallclock-and-rng
  const auto t0 = Clock::now();
  return static_cast<long>(t0.time_since_epoch().count());
}

// Violation: C wall time.
long CTime() {
  // expect-warning@+1: wallclock-and-rng
  return static_cast<long>(std::time(nullptr));
}

// Violation: C PRNG.
int CRand() {
  // expect-warning@+1: wallclock-and-rng
  return std::rand();
}

}  // namespace parjoin
