// Fixtures for charged-exchange: inside a ParallelFor worker lambda,
// Dist::part() must address the worker's own index; anything else is an
// uncharged cross-part touch that belongs in Exchange/ExchangeMulti.

#include <vector>

#include "parjoin_stub.h"

namespace parjoin {

// Violation: every worker writes part 0 — uncharged and racy.
void LeakCrossPart(mpc::Dist<int>& out, int p) {
  ParallelFor(p, [&](int i) {
    // expect-warning@+1: charged-exchange
    out.part(0).push_back(i);
  });
}

// Violation: the index comes from the enclosing scope, not the worker.
void BroadcastToFixed(mpc::Dist<int>& out, int target, int p) {
  ParallelFor(p, [&](int i) {
    // expect-warning@+1: charged-exchange
    out.part(target).push_back(i);
  });
}

// Clean: each worker touches only its own part.
void FillOwnPart(mpc::Dist<int>& out, int p) {
  ParallelFor(p, [&](int i) { out.part(i).push_back(i); });
}

// Clean: a derived index still references the worker's index.
void FillDerived(mpc::Dist<int>& out, int p) {
  ParallelFor(p, [&](int i) {
    const int mine = i;
    out.part(mine).push_back(i);
  });
}

}  // namespace parjoin
