// Minimal stand-ins so the analyzer fixtures compile without the real
// tree. The analyzer matches on names and canonical types, not on the
// real headers, so these shims are all it needs: ParallelFor, Dist,
// Checked*/Saturating* wrappers, SortedEntries, and GUARDED_BY.

#ifndef PARJOIN_ANALYZER_TESTDATA_STUB_H_
#define PARJOIN_ANALYZER_TESTDATA_STUB_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

namespace parjoin {

inline void ParallelFor(int n, const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) fn(i);
}

inline std::int64_t CheckedMul(std::int64_t a, std::int64_t b) {
  return a * b;
}
inline std::int64_t CheckedAdd(std::int64_t a, std::int64_t b) {
  return a + b;
}
inline std::int64_t SaturatingMul(std::int64_t a, std::int64_t b) {
  return a * b;
}

namespace mpc {

template <typename T>
class Dist {
 public:
  explicit Dist(int p = 0) : parts_(static_cast<unsigned>(p)) {}
  std::vector<T>& part(int i) { return parts_[static_cast<unsigned>(i)]; }
  const std::vector<T>& part(int i) const {
    return parts_[static_cast<unsigned>(i)];
  }
  int num_parts() const { return static_cast<int>(parts_.size()); }

 private:
  std::vector<std::vector<T>> parts_;
};

}  // namespace mpc

template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedEntries(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      out(m.begin(), m.end());
  std::sort(out.begin(), out.end());
  return out;
}

// Simple relation-ish type so fixtures can call TotalSize().
struct StubRelation {
  std::vector<int> tuples;
  std::int64_t TotalSize() const {
    return static_cast<std::int64_t>(tuples.size());
  }
};

}  // namespace parjoin

#endif  // PARJOIN_ANALYZER_TESTDATA_STUB_H_
