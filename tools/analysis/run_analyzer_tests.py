#!/usr/bin/env python3
"""Fixture harness for parjoin_analyzer.

Modes:
  --mode annotations   Validate the `// expect-warning` annotations in
                       testdata/ (parse, line targets in range, every
                       check covered). Pure python; runs without the
                       analyzer binary.
  --mode fixtures      Build a compile_commands.json over testdata/src,
                       run the analyzer, and require its findings to
                       match the annotations exactly (both directions).
  --self-test          Seed one fresh violation per check into a temp
                       tree and require every check to fire — catches a
                       check silently going dead.

Annotation grammar (in fixture sources):
  // expect-warning: <check>        violation on this line
  // expect-warning@+N: <check>     violation N lines below
  // expect-warning@N: <check>      violation at absolute line N
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

CHECKS = [
    "determinism-unordered-iteration",
    "checked-count-arith",
    "charged-exchange",
    "parallelfor-shared-state",
    "wallclock-and-rng",
]

EXPECT_RE = re.compile(r"//\s*expect-warning(?:@(\+?-?\d+))?:\s*([a-z-]+)")
FINDING_RE = re.compile(r"^(.*?):(\d+):\d+:\s+warning:\s+\[([a-z-]+)\]")


def fail(msg):
    print("FAIL: " + msg)
    sys.exit(1)


def fixture_sources(testdata):
    out = []
    for root, _, files in os.walk(os.path.join(testdata, "src")):
        for f in sorted(files):
            if f.endswith(".cc"):
                out.append(os.path.join(root, f))
    return sorted(out)


def collect_expectations(paths):
    """Returns {(realpath, line): set(check)} parsed from annotations."""
    expects = {}
    for path in paths:
        with open(path) as fh:
            lines = fh.readlines()
        for lineno, line in enumerate(lines, 1):
            if "expect-warning" not in line:
                continue
            m = EXPECT_RE.search(line)
            if not m:
                fail("%s:%d: malformed expect-warning annotation" %
                     (path, lineno))
            offset, check = m.group(1), m.group(2)
            if check not in CHECKS:
                fail("%s:%d: unknown check '%s'" % (path, lineno, check))
            if offset is None:
                target = lineno
            elif offset.startswith(("+", "-")):
                target = lineno + int(offset)
            else:
                target = int(offset)
            if not 1 <= target <= len(lines):
                fail("%s:%d: target line %d out of range" %
                     (path, lineno, target))
            expects.setdefault((os.path.realpath(path), target),
                               set()).add(check)
    return expects


def find_clang():
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16",
                 "clang++-15", "clang++-14"):
        if shutil.which(name):
            return name
    return None


def write_compile_db(sources, include_dir, build_dir):
    clang = find_clang()
    compiler = clang if clang else "clang++"
    extra = []
    if clang:
        try:
            res = subprocess.run([clang, "-print-resource-dir"],
                                 capture_output=True, text=True, timeout=30)
            if res.returncode == 0 and res.stdout.strip():
                extra = ["-resource-dir", res.stdout.strip()]
        except OSError:
            pass
    entries = []
    for src in sources:
        entries.append({
            "directory": build_dir,
            "file": src,
            "arguments": [compiler, "-std=c++17", "-I", include_dir] +
                         extra + ["-fsyntax-only", src],
        })
    with open(os.path.join(build_dir, "compile_commands.json"), "w") as fh:
        json.dump(entries, fh, indent=1)


def run_analyzer(analyzer, build_dir, sources):
    """Returns (findings as {(realpath, line): set(check)}, returncode)."""
    proc = subprocess.run([analyzer, "-p", build_dir] + sources,
                          capture_output=True, text=True)
    if proc.returncode == 2:
        fail("analyzer errored:\n" + proc.stdout + proc.stderr)
    findings = {}
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        findings.setdefault(
            (os.path.realpath(m.group(1)), int(m.group(2))),
            set()).add(m.group(3))
    return findings, proc.returncode


def diff_sets(expects, findings):
    problems = []
    for key, checks in sorted(expects.items()):
        got = findings.get(key, set())
        for check in sorted(checks - got):
            problems.append("missing: %s:%d [%s]" % (key[0], key[1], check))
    for key, checks in sorted(findings.items()):
        want = expects.get(key, set())
        for check in sorted(checks - want):
            problems.append("unexpected: %s:%d [%s]" %
                            (key[0], key[1], check))
    return problems


def mode_annotations(testdata):
    sources = fixture_sources(testdata)
    if not sources:
        fail("no fixture sources under %s" % testdata)
    expects = collect_expectations(sources)
    covered = set()
    for checks in expects.values():
        covered |= checks
    missing = [c for c in CHECKS if c not in covered]
    if missing:
        fail("checks with no fixture expectation: %s" % ", ".join(missing))
    print("OK: %d expectations across %d fixtures cover all %d checks" %
          (sum(len(v) for v in expects.values()), len(sources),
           len(CHECKS)))


def mode_fixtures(testdata, analyzer):
    sources = fixture_sources(testdata)
    expects = collect_expectations(sources)
    with tempfile.TemporaryDirectory() as build_dir:
        write_compile_db(sources, os.path.join(testdata, "include"),
                         build_dir)
        findings, _ = run_analyzer(analyzer, build_dir, sources)
    problems = diff_sets(expects, findings)
    if problems:
        fail("findings do not match annotations:\n  " +
             "\n  ".join(problems))
    print("OK: analyzer findings match all %d annotations" %
          sum(len(v) for v in expects.values()))


# One seeded violation per check; file paths are relative to the temp
# tree and chosen so the path-scoped checks apply.
SELF_TEST_SOURCES = {
    "determinism-unordered-iteration": (
        "src/parjoin/algorithms/seed_unordered.cc", """
#include <unordered_map>
#include <vector>
std::vector<int> Emit(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& kv : m) out.push_back(kv.first);
  return out;
}
"""),
    "checked-count-arith": (
        "src/parjoin/algorithms/seed_count_arith.cc", """
#include <vector>
long long Cells(const std::vector<int>& a, const std::vector<int>& b) {
  return static_cast<long long>(a.size()) *
         static_cast<long long>(b.size());
}
"""),
    "charged-exchange": (
        "src/parjoin/algorithms/seed_charged.cc", """
#include "parjoin_stub.h"
void Leak(parjoin::mpc::Dist<int>& out, int p) {
  parjoin::ParallelFor(p, [&](int i) { out.part(0).push_back(i); });
}
"""),
    "parallelfor-shared-state": (
        "src/parjoin/algorithms/seed_shared.cc", """
#include "parjoin_stub.h"
long g_total = 0;
void Accumulate(int p) {
  parjoin::ParallelFor(p, [&](int i) { g_total += i; });
}
"""),
    "wallclock-and-rng": (
        "src/parjoin/algorithms/seed_wallclock.cc", """
#include <cstdlib>
int Draw() { return std::rand(); }
"""),
}


def mode_self_test(testdata, analyzer):
    with tempfile.TemporaryDirectory() as tmp:
        include_dir = os.path.join(tmp, "include")
        shutil.copytree(os.path.join(testdata, "include"), include_dir)
        sources = []
        for check, (relpath, content) in sorted(SELF_TEST_SOURCES.items()):
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as fh:
                fh.write(content)
            sources.append(path)
        build_dir = os.path.join(tmp, "build")
        os.makedirs(build_dir)
        write_compile_db(sources, include_dir, build_dir)
        findings, rc = run_analyzer(analyzer, build_dir, sources)
        fired = set()
        for checks in findings.values():
            fired |= checks
        dead = [c for c in CHECKS if c not in fired]
        if dead:
            fail("seeded violations not detected (check went dead): %s" %
                 ", ".join(dead))
        if rc != 1:
            fail("analyzer exit code %d on seeded violations, want 1" % rc)
    print("OK: all %d checks fired on seeded violations" % len(CHECKS))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=["annotations", "fixtures"],
                    default=None)
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--analyzer", default=None)
    ap.add_argument("--testdata",
                    default=os.path.join(os.path.dirname(
                        os.path.abspath(__file__)), "testdata"))
    args = ap.parse_args()

    if args.self_test:
        if not args.analyzer:
            fail("--self-test requires --analyzer")
        mode_self_test(args.testdata, args.analyzer)
    elif args.mode == "annotations":
        mode_annotations(args.testdata)
    elif args.mode == "fixtures":
        if not args.analyzer:
            fail("--mode fixtures requires --analyzer")
        mode_fixtures(args.testdata, args.analyzer)
    else:
        fail("pick --mode annotations|fixtures or --self-test")


if __name__ == "__main__":
    main()
