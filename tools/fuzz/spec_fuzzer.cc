// Fuzz harness for the serve spec/workload parser — the query-ingress
// path (serve/spec.h). Both parsers must turn ANY byte stream into
// either a parsed spec or a line-numbered InvalidArgument Status;
// crashes, hangs, and sanitizer reports are bugs.
//
// Two build flavors (tools/fuzz/CMakeLists.txt):
//   PARJOIN_FUZZ_LIBFUZZER defined: clang libFuzzer entry point; CI runs
//       a short coverage-guided loop under ASan+UBSan.
//   default: plain main() replaying the corpus files passed as argv —
//       registered as the `fuzz_corpus_replay` ctest target so every
//       build exercises the corpus, g++ included.

#include <cstddef>
#include <cstdint>
#include <string>

#include "parjoin/serve/spec.h"

namespace {

void FuzzOne(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  {
    auto result = parjoin::serve::ParseQuerySpecText(text, "fuzz");
    (void)result;
  }
  {
    auto result = parjoin::serve::ParseWorkloadText(text, "fuzz");
    (void)result;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzOne(data, size);
  return 0;
}

#ifndef PARJOIN_FUZZ_LIBFUZZER

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open corpus file: " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    FuzzOne(reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " corpus file(s)\n";
  return 0;
}

#endif  // PARJOIN_FUZZ_LIBFUZZER
