#!/usr/bin/env python3
"""parjoin_lint: repo-specific invariant linter for the parjoin tree.

Generic tools (clang-tidy, -Wthread-safety, TSan) cannot see *project*
invariants — that all inter-server data movement flows through the
accounted mpc::Exchange path, that every byte of randomness derives from
seeded streams, that threading stays contained in the one audited pool.
This linter enforces those. It is intentionally regex/heuristic based: the
rules are scoped so the heuristics are exact on this codebase, and every
rule has an escape hatch that demands a written justification.

Rules (ids used by `// parjoin-lint: allow(<id>): <why>` suppressions):

  thread-primitive     std::thread / std::jthread / std::async / pthread_*
                       only inside src/parjoin/common/parallel_for.cc. All
                       other code parallelizes through ParallelFor, whose
                       pool is the single audited concurrency surface.
  raw-sync             std::mutex / condition_variable / lock_guard /
                       unique_lock / scoped_lock only inside
                       src/parjoin/common/mutex.h. Everything else uses the
                       annotated Mutex/MutexLock/CondVar wrappers so clang
                       -Wthread-safety sees every lock site.
  nondet-random        rand() / srand / std::random_device / std::mt19937 /
                       <random> / time()-derived seeds are banned in src/:
                       all randomness flows from explicit 64-bit seeds via
                       common/random.h (determinism is a tested library
                       guarantee).
  chrono-timing        std::chrono in src/ is allowed only in
                       common/stopwatch.h (the one wall-clock primitive)
                       and src/parjoin/obs/ (observer-side stamping).
                       Everywhere else time must never feed seeds, charged
                       loads, or program logic — wall timing goes through
                       Stopwatch, and only from layers whose output the
                       determinism tests ignore.
  unchecked-count-mul  In algorithm headers, `*` on tuple-count/degree
                       quantities (deg*/count*/cnt/out_est/...) must go
                       through common/checked_math.h (CheckedMul /
                       SaturatingMul) or explicit double math: a silently
                       wrapped count corrupts heavy thresholds and every
                       routing decision downstream.
  cross-part-write     Outside src/parjoin/mpc/, writing into a Dist part
                       (`.part(e).push_back(...)`, `.part(e) = ...`) is
                       only legal when `e` is a loop induction variable —
                       i.e. a same-server rearrangement. Computed
                       destinations mean cross-server movement, which must
                       go through mpc::Exchange/ExchangeMulti so the load
                       ledger stays exact.
  header-guard         Headers use canonical PARJOIN_<PATH>_H_ guards
                       (never #pragma once), matching their path.
  include-hygiene      Project headers are quote-included by full path;
                       C++ standard headers are angle-included; a .cc file
                       includes its own header first.
  ingress-status       On input-facing paths (relation/io.*, workload/,
                       serve/ — the parjoind query-ingress layer),
                       CHECK* macros and LOG(FATAL) are banned except
                       CHECK_OK: malformed *input* must surface as
                       Status/StatusOr (common/status.h) so callers like
                       query_runner can report and exit instead of
                       aborting. CHECK_OK marks call sites whose arguments
                       are validated by construction.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys
import tempfile

CPP_EXTS = (".cc", ".h", ".cpp")
SCAN_DIRS = ("src", "bench", "tests", "examples")

ALLOW_RE = re.compile(r"parjoin-lint:\s*allow\(([a-z-]+)\)")

# C++ standard headers one might plausibly quote-include by mistake.
STD_HEADERS = {
    "algorithm", "array", "atomic", "cassert", "chrono", "cmath",
    "condition_variable", "cstdint", "cstdio", "cstdlib", "cstring",
    "deque", "filesystem", "fstream", "functional", "iomanip", "iostream",
    "limits", "map", "memory", "mutex", "numeric", "optional", "queue",
    "random", "set", "sstream", "stdexcept", "string", "string_view",
    "thread", "tuple", "type_traits", "unordered_map", "unordered_set",
    "utility", "variant", "vector",
}

COUNT_IDENT_RE = re.compile(
    r"^(?:deg\w*|degree\w*|cnt\w*|count\w*|n_tuples\w*|num_tuples\w*|"
    r"out_est\w*|j_est\w*|total_size\w*|nnz\w*)$",
    re.IGNORECASE,
)

LOOP_VAR_RES = (
    # for (int s = ...;  /  for (std::int64_t s : ...
    re.compile(r"for\s*\(\s*(?:const\s+)?[\w:]+\s+(\w+)\s*[=:]"),
    # ParallelFor(n, [..](int s) { ... and other int-taking lambdas
    re.compile(r"\[[^\]]*\]\s*\(\s*(?:const\s+)?(?:std::)?\w+\s+(\w+)\s*\)"),
)

PART_WRITE_RE = re.compile(
    r"\.part\(\s*([^()]*(?:\([^()]*\)[^()]*)*)\s*\)\s*"
    r"(?:\.push_back|\.emplace_back|\.emplace|\.insert|\.clear|\.resize"
    r"|=(?!=)|\+=)"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Returns lines with comments and string/char literals blanked out
    (same length preserved so column positions survive)."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i, n = 0, len(raw)
        in_str = in_chr = False
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
            elif in_str or in_chr:
                if c == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if (in_str and c == '"') or (in_chr and c == "'"):
                    in_str = in_chr = False
                    buf.append(c)
                else:
                    buf.append(" ")
                i += 1
            elif c == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            elif c == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif c == '"':
                in_str = True
                buf.append(c)
                i += 1
            elif c == "'":
                # Heuristic: treat as char literal only when it closes
                # nearby (avoids eating digit separators like 1'000'000).
                close = raw.find("'", i + 1)
                if 0 < close - i <= 4 or (close > i and raw[i + 1] == "\\"):
                    in_chr = True
                    buf.append(c)
                    i += 1
                else:
                    buf.append(" ")
                    i += 1
            else:
                buf.append(c)
                i += 1
        # Unterminated string/char at EOL: literal ends with the line.
        in_str = in_chr = False
        out.append("".join(buf))
    return out


def allowed(rule, raw_lines, idx):
    """True when line idx (0-based) or the line above carries an allow
    pragma for `rule`."""
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[j])
            if m and m.group(1) == rule:
                return True
    return False


def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


# --- rules -------------------------------------------------------------------


def check_thread_primitive(rel, raw, code, findings):
    if rel == "src/parjoin/common/parallel_for.cc":
        return
    if rel.startswith("tests/"):
        return  # test scaffolding may drive threads directly
    pat = re.compile(r"std::thread\b|std::jthread\b|std::async\b|pthread_\w+")
    for i, line in enumerate(code):
        m = pat.search(line)
        if m and not allowed("thread-primitive", raw, i):
            findings.append(Finding(
                rel, i + 1, "thread-primitive",
                f"'{m.group(0)}' outside common/parallel_for.cc; use "
                "ParallelFor (the one audited pool)"))


def check_raw_sync(rel, raw, code, findings):
    if rel in ("src/parjoin/common/mutex.h",):
        return
    if rel.startswith("tests/"):
        return
    pat = re.compile(
        r"std::(?:mutex|shared_mutex|recursive_mutex|condition_variable\w*"
        r"|lock_guard|unique_lock|scoped_lock)\b")
    for i, line in enumerate(code):
        m = pat.search(line)
        if m and not allowed("raw-sync", raw, i):
            findings.append(Finding(
                rel, i + 1, "raw-sync",
                f"'{m.group(0)}' outside common/mutex.h; use the annotated "
                "Mutex/MutexLock/CondVar so -Wthread-safety sees the lock"))


def check_nondet_random(rel, raw, code, findings):
    if not rel.startswith("src/"):
        return
    pat = re.compile(
        r"\brand\s*\(|\bsrand\s*\(|std::random_device\b|std::mt19937\w*\b|"
        r"std::default_random_engine\b|#\s*include\s*<random>|"
        r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")
    for i, line in enumerate(code):
        m = pat.search(line)
        if m and not allowed("nondet-random", raw, i):
            findings.append(Finding(
                rel, i + 1, "nondet-random",
                f"'{m.group(0).strip()}' in src/; all randomness must "
                "derive from explicit seeds via common/random.h"))


def check_chrono_timing(rel, raw, code, findings):
    if not rel.startswith("src/"):
        return
    if rel == "src/parjoin/common/stopwatch.h" or \
            rel.startswith("src/parjoin/obs/"):
        return
    pat = re.compile(r"std::chrono\b|#\s*include\s*<chrono>")
    for i, line in enumerate(code):
        m = pat.search(line)
        if m and not allowed("chrono-timing", raw, i):
            findings.append(Finding(
                rel, i + 1, "chrono-timing",
                "std::chrono outside common/stopwatch.h and obs/; wall "
                "timing goes through Stopwatch, and time must never feed "
                "seeds, charged loads, or program logic"))


def check_unchecked_count_mul(rel, raw, code, findings):
    if not (rel.startswith("src/parjoin/algorithms/") and rel.endswith(".h")):
        return
    for i, line in enumerate(code):
        for m in re.finditer(r"(\w+)\s*\*\s*(\w+)", line):
            operands = (m.group(1), m.group(2))
            if not any(COUNT_IDENT_RE.match(op) for op in operands):
                continue
            # `T* count` declarations and `*count` derefs are not products.
            if re.search(r"(?:int\w*|size_t|auto|double|float)\s*\*\s*$",
                         line[: m.start(2)]):
                continue
            if allowed("unchecked-count-mul", raw, i):
                continue
            findings.append(Finding(
                rel, i + 1, "unchecked-count-mul",
                f"raw '*' on count-like operand in '{m.group(0)}'; use "
                "CheckedMul/SaturatingMul from common/checked_math.h or "
                "explicit double math"))


def check_cross_part_write(rel, raw, code, findings):
    if not rel.startswith("src/parjoin/") or rel.startswith("src/parjoin/mpc/"):
        return
    # Collect loop induction variables visible upstream of each line.
    for i, line in enumerate(code):
        m = PART_WRITE_RE.search(line)
        if m is None:
            continue
        arg = m.group(1).strip()
        if allowed("cross-part-write", raw, i):
            continue
        loop_vars = set()
        for j in range(max(0, i - 60), i + 1):
            for lre in LOOP_VAR_RES:
                for lm in lre.finditer(code[j]):
                    loop_vars.add(lm.group(1))
        if re.fullmatch(r"\w+", arg) and arg in loop_vars:
            continue  # same-server rearrangement over a loop over parts
        findings.append(Finding(
            rel, i + 1, "cross-part-write",
            f"write into .part({arg}) with a computed destination; "
            "cross-server movement must go through mpc::Exchange/"
            "ExchangeMulti so the load ledger stays exact"))


def check_ingress_status(rel, raw, code, findings):
    if not (rel.startswith("src/parjoin/workload/") or
            rel.startswith("src/parjoin/serve/") or
            rel.startswith("src/parjoin/relation/io.")):
        return
    pat = re.compile(r"\b(CHECK(?:_[A-Z]+)?|LOG)\s*\(")
    for i, line in enumerate(code):
        for m in pat.finditer(line):
            macro = m.group(1)
            if macro == "CHECK_OK":
                continue
            if macro == "LOG" and \
                    not line[m.end():].lstrip().startswith("FATAL"):
                continue
            if allowed("ingress-status", raw, i):
                continue
            findings.append(Finding(
                rel, i + 1, "ingress-status",
                f"'{macro}' on an ingress path; malformed input must "
                "surface as Status/StatusOr (common/status.h), with "
                "CHECK_OK reserved for validated-by-construction calls"))


def check_bare_assert(rel, raw, code, findings):
    if not rel.startswith("src/"):
        return
    # `(?<![\w_])` keeps static_assert and *_assert identifiers out.
    pat = re.compile(r"(?<![\w_])assert\s*\(")
    for i, line in enumerate(code):
        if pat.search(line):
            if allowed("bare-assert", raw, i):
                continue
            findings.append(Finding(
                rel, i + 1, "bare-assert",
                "bare assert() compiles out under NDEBUG (the Release "
                "default); use CHECK/CHECK_* (common/logging.h) for "
                "invariants or Status/StatusOr for input errors"))


def canonical_guard(rel):
    if rel.startswith("src/parjoin/"):
        stem = rel[len("src/parjoin/"):]
    elif rel.startswith("src/"):
        stem = rel[len("src/"):]
    else:
        stem = rel
    return "PARJOIN_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check_header_guard(rel, raw, code, findings):
    if not rel.endswith(".h"):
        return
    text = "\n".join(code)
    if "#pragma once" in text:
        findings.append(Finding(rel, 1, "header-guard",
                                "#pragma once; use a PARJOIN_*_H_ guard"))
        return
    want = canonical_guard(rel)
    m = re.search(r"#\s*ifndef\s+(\w+)\s*\n\s*#\s*define\s+(\w+)", text)
    if m is None:
        findings.append(Finding(rel, 1, "header-guard",
                                f"missing include guard (expected {want})"))
        return
    if m.group(1) != want or m.group(2) != want:
        findings.append(Finding(
            rel, 1, "header-guard",
            f"guard {m.group(1)} does not match canonical {want}"))


def check_include_hygiene(rel, raw, code, findings, root):
    own_header = None
    if rel.endswith((".cc", ".cpp")):
        base = rel.rsplit(".", 1)[0] + ".h"
        if os.path.exists(os.path.join(root, base)):
            if base.startswith("src/"):
                own_header = base[len("src/"):]
            else:
                own_header = os.path.basename(base)
    first_include = None
    # Parse raw lines: strip_code blanks string contents, which would
    # erase quote-include targets.
    for i, line in enumerate(raw):
        m = re.match(r'\s*#\s*include\s*([<"])([^>"]+)[>"]', line)
        if m is None:
            continue
        style, target = m.group(1), m.group(2)
        if first_include is None:
            first_include = (i, target)
        if allowed("include-hygiene", raw, i):
            continue
        if style == "<" and (target.startswith("parjoin/") or
                             target.startswith("src/")):
            findings.append(Finding(
                rel, i + 1, "include-hygiene",
                f"project header <{target}> must be quote-included"))
        if style == '"' and target in STD_HEADERS:
            findings.append(Finding(
                rel, i + 1, "include-hygiene",
                f'standard header "{target}" must be angle-included'))
        if style == '"' and target.startswith("src/"):
            findings.append(Finding(
                rel, i + 1, "include-hygiene",
                f'"{target}": include project headers as "parjoin/..." '
                "(src/ is the include root)"))
    if own_header is not None and first_include is not None:
        i, target = first_include
        if target != own_header and not allowed("include-hygiene", raw, i):
            findings.append(Finding(
                rel, i + 1, "include-hygiene",
                f'first include must be own header "{own_header}" '
                f'(found "{target}")'))


RULES = [
    "thread-primitive", "raw-sync", "nondet-random", "chrono-timing",
    "unchecked-count-mul", "cross-part-write", "header-guard",
    "include-hygiene", "ingress-status", "bare-assert",
]


def lint_file(path, root):
    rel = relpath(path, root)
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 0, "io", f"unreadable: {e}")]
    code = strip_code(raw)
    findings = []
    check_thread_primitive(rel, raw, code, findings)
    check_raw_sync(rel, raw, code, findings)
    check_nondet_random(rel, raw, code, findings)
    check_chrono_timing(rel, raw, code, findings)
    check_unchecked_count_mul(rel, raw, code, findings)
    check_cross_part_write(rel, raw, code, findings)
    check_ingress_status(rel, raw, code, findings)
    check_bare_assert(rel, raw, code, findings)
    check_header_guard(rel, raw, code, findings)
    check_include_hygiene(rel, raw, code, findings, root)
    return findings


def lint_tree(root):
    findings = []
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, files in os.walk(top):
            for name in sorted(files):
                if name.endswith(CPP_EXTS):
                    findings.extend(lint_file(os.path.join(dirpath, name),
                                              root))
    return findings


# --- self-test ---------------------------------------------------------------

# One deliberately seeded violation per rule, plus a clean control file.
SELF_TEST_CASES = [
    ("thread-primitive", "src/parjoin/algorithms/bad_thread.h",
     "#ifndef PARJOIN_ALGORITHMS_BAD_THREAD_H_\n"
     "#define PARJOIN_ALGORITHMS_BAD_THREAD_H_\n"
     "#include <thread>\n"
     "inline void f() { std::thread t([]{}); t.join(); }\n"
     "#endif  // PARJOIN_ALGORITHMS_BAD_THREAD_H_\n"),
    ("raw-sync", "src/parjoin/relation/bad_sync.h",
     "#ifndef PARJOIN_RELATION_BAD_SYNC_H_\n"
     "#define PARJOIN_RELATION_BAD_SYNC_H_\n"
     "#include <mutex>\n"
     "inline std::mutex g_mu;\n"
     "#endif  // PARJOIN_RELATION_BAD_SYNC_H_\n"),
    ("nondet-random", "src/parjoin/workload/bad_random.h",
     "#ifndef PARJOIN_WORKLOAD_BAD_RANDOM_H_\n"
     "#define PARJOIN_WORKLOAD_BAD_RANDOM_H_\n"
     "inline int f() { return rand() % 7; }\n"
     "#endif  // PARJOIN_WORKLOAD_BAD_RANDOM_H_\n"),
    ("nondet-random", "src/parjoin/workload/bad_seed.h",
     "#ifndef PARJOIN_WORKLOAD_BAD_SEED_H_\n"
     "#define PARJOIN_WORKLOAD_BAD_SEED_H_\n"
     "#include <random>\n"
     "inline std::mt19937 g(std::random_device{}());\n"
     "#endif  // PARJOIN_WORKLOAD_BAD_SEED_H_\n"),
    ("chrono-timing", "src/parjoin/mpc/bad_chrono.h",
     "#ifndef PARJOIN_MPC_BAD_CHRONO_H_\n"
     "#define PARJOIN_MPC_BAD_CHRONO_H_\n"
     "#include <chrono>\n"
     "inline auto Now() { return std::chrono::steady_clock::now(); }\n"
     "#endif  // PARJOIN_MPC_BAD_CHRONO_H_\n"),
    ("unchecked-count-mul", "src/parjoin/algorithms/bad_mul.h",
     "#ifndef PARJOIN_ALGORITHMS_BAD_MUL_H_\n"
     "#define PARJOIN_ALGORITHMS_BAD_MUL_H_\n"
     "inline long f(long deg_r, long deg_s) { return deg_r * deg_s; }\n"
     "#endif  // PARJOIN_ALGORITHMS_BAD_MUL_H_\n"),
    ("cross-part-write", "src/parjoin/algorithms/bad_part.h",
     "#ifndef PARJOIN_ALGORITHMS_BAD_PART_H_\n"
     "#define PARJOIN_ALGORITHMS_BAD_PART_H_\n"
     "template <typename D, typename T>\n"
     "void f(D& out, const T& item, int p) {\n"
     "  const int dest = Hash(item) % p;\n"
     "  out.part(dest).push_back(item);\n"
     "}\n"
     "#endif  // PARJOIN_ALGORITHMS_BAD_PART_H_\n"),
    ("ingress-status", "src/parjoin/workload/bad_ingress.h",
     "#ifndef PARJOIN_WORKLOAD_BAD_INGRESS_H_\n"
     "#define PARJOIN_WORKLOAD_BAD_INGRESS_H_\n"
     "inline void f(int n) { CHECK_GT(n, 0); }\n"
     "#endif  // PARJOIN_WORKLOAD_BAD_INGRESS_H_\n"),
    ("ingress-status", "src/parjoin/relation/io.cc",
     "#include \"parjoin/relation/io.h\"\n"
     "void f() { LOG(FATAL) << \"bad csv\"; }\n"),
    ("ingress-status", "src/parjoin/serve/bad_spec.cc",
     "#include \"parjoin/serve/bad_spec.h\"\n"
     "void f(int tokens) { CHECK_EQ(tokens, 2); }\n"),
    ("bare-assert", "src/parjoin/common/bad_assert.h",
     "#ifndef PARJOIN_COMMON_BAD_ASSERT_H_\n"
     "#define PARJOIN_COMMON_BAD_ASSERT_H_\n"
     "#include <cassert>\n"
     "inline void f(int n) { assert(n > 0); }\n"
     "#endif  // PARJOIN_COMMON_BAD_ASSERT_H_\n"),
    ("header-guard", "src/parjoin/common/bad_guard.h",
     "#pragma once\n"
     "inline int f() { return 1; }\n"),
    ("include-hygiene", "src/parjoin/common/bad_include.cc",
     "#include <parjoin/common/bad_include.h>\n"
     "#include \"vector\"\n"),
]

SELF_TEST_CLEAN = (
    "src/parjoin/algorithms/good.h",
    "#ifndef PARJOIN_ALGORITHMS_GOOD_H_\n"
    "#define PARJOIN_ALGORITHMS_GOOD_H_\n"
    "#include <vector>\n"
    "#include \"parjoin/common/checked_math.h\"\n"
    "template <typename D, typename T>\n"
    "void Rearrange(D& out, const D& in) {\n"
    "  for (int s = 0; s < in.num_parts(); ++s) {\n"
    "    for (const T& t : in.part(s)) out.part(s).push_back(t);\n"
    "  }\n"
    "}\n"
    "inline long Product(long deg_r, long deg_s) {\n"
    "  return parjoin::CheckedMul(deg_r, deg_s);\n"
    "}\n"
    "inline long Allowed(long count_a, long b) {\n"
    "  // parjoin-lint: allow(unchecked-count-mul): b is a constant <= 8\n"
    "  return count_a * b;\n"
    "}\n"
    "#endif  // PARJOIN_ALGORITHMS_GOOD_H_\n",
)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="parjoin_lint_selftest") as tmp:
        for rule, rel, content in SELF_TEST_CASES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            hits = [f for f in lint_file(path, tmp) if f.rule == rule]
            if not hits:
                failures.append(f"seeded {rule} violation in {rel} "
                                "was NOT caught")
            for other in lint_file(path, tmp):
                if other.rule not in RULES:
                    failures.append(f"unexpected rule id {other.rule}")
            os.remove(path)
        rel, content = SELF_TEST_CLEAN
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        noise = lint_file(path, tmp)
        for f in noise:
            failures.append(f"clean control file flagged: {f}")
    if failures:
        print("parjoin_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"parjoin_lint self-test passed "
          f"({len(SELF_TEST_CASES)} seeded violations caught, "
          "clean control file quiet)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule catches a seeded violation")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"parjoin_lint: {len(findings)} finding(s)")
        return 1
    print("parjoin_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
